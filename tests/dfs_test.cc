// Unit tests for the simulated distributed file system: placement,
// replication accounting, capacity enforcement (the failure mechanism the
// paper's 'X' bars rely on), metrics, and reclamation.

#include <gtest/gtest.h>

#include <numeric>

#include "dfs/sim_dfs.h"

namespace rdfmr {
namespace {

ClusterConfig SmallCluster(uint32_t nodes = 4, uint64_t disk = 1 << 20,
                           uint32_t repl = 1, uint64_t block = 4096) {
  ClusterConfig config;
  config.num_nodes = nodes;
  config.disk_per_node = disk;
  config.replication = repl;
  config.block_size = block;
  return config;
}

std::vector<std::string> Lines(size_t n, size_t width = 10) {
  std::vector<std::string> out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(std::string(width - 1, 'x') +
                  static_cast<char>('a' + i % 26));
  }
  return out;
}

TEST(SimDfsTest, WriteReadRoundtrip) {
  SimDfs dfs(SmallCluster());
  std::vector<std::string> lines = {"first", "second", "third"};
  ASSERT_TRUE(dfs.WriteFile("f", lines).ok());
  auto back = dfs.ReadFile("f");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, lines);
}

TEST(SimDfsTest, FileSizeIncludesNewlines) {
  SimDfs dfs(SmallCluster());
  ASSERT_TRUE(dfs.WriteFile("f", {"abc", "de"}).ok());
  auto size = dfs.FileSize("f");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 4u + 3u);
}

TEST(SimDfsTest, EmptyFileAllowed) {
  SimDfs dfs(SmallCluster());
  ASSERT_TRUE(dfs.WriteFile("empty", {}).ok());
  EXPECT_TRUE(dfs.Exists("empty"));
  auto lines = dfs.ReadFile("empty");
  ASSERT_TRUE(lines.ok());
  EXPECT_TRUE(lines->empty());
}

TEST(SimDfsTest, DuplicateWriteRejected) {
  SimDfs dfs(SmallCluster());
  ASSERT_TRUE(dfs.WriteFile("f", {"x"}).ok());
  Status st = dfs.WriteFile("f", {"y"});
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
}

TEST(SimDfsTest, MissingFileOperations) {
  SimDfs dfs(SmallCluster());
  EXPECT_TRUE(dfs.ReadFile("nope").status().IsNotFound());
  EXPECT_TRUE(dfs.FileSize("nope").status().IsNotFound());
  EXPECT_TRUE(dfs.BlockCount("nope").status().IsNotFound());
  EXPECT_TRUE(dfs.DeleteFile("nope").IsNotFound());
  EXPECT_FALSE(dfs.Exists("nope"));
}

TEST(SimDfsTest, BlockCountRoundsUp) {
  SimDfs dfs(SmallCluster(4, 1 << 20, 1, /*block=*/100));
  ASSERT_TRUE(dfs.WriteFile("f", Lines(25, 10)).ok());  // 250 bytes
  auto blocks = dfs.BlockCount("f");
  ASSERT_TRUE(blocks.ok());
  EXPECT_EQ(*blocks, 3u);
}

TEST(SimDfsTest, ReplicationMultipliesPhysicalUsage) {
  SimDfs dfs(SmallCluster(4, 1 << 20, 2));
  ASSERT_TRUE(dfs.WriteFile("f", Lines(10)).ok());
  uint64_t logical = *dfs.FileSize("f");
  EXPECT_EQ(dfs.UsedBytes(), logical * 2);
  EXPECT_EQ(dfs.metrics().bytes_written, logical);
  EXPECT_EQ(dfs.metrics().bytes_written_replicated, logical * 2);
}

TEST(SimDfsTest, ReplicasLandOnDistinctNodes) {
  SimDfs dfs(SmallCluster(3, 1 << 20, 3, /*block=*/1 << 20));
  ASSERT_TRUE(dfs.WriteFile("f", Lines(10)).ok());
  uint64_t logical = *dfs.FileSize("f");
  for (uint64_t used : dfs.NodeUsage()) {
    EXPECT_EQ(used, logical) << "every node must hold exactly one replica";
  }
}

TEST(SimDfsTest, PlacementBalancesLoad) {
  SimDfs dfs(SmallCluster(4, 1 << 20, 1, /*block=*/100));
  // 8 blocks of ~100 bytes should spread across 4 nodes evenly.
  ASSERT_TRUE(dfs.WriteFile("f", Lines(80, 10)).ok());
  auto usage = dfs.NodeUsage();
  uint64_t min = *std::min_element(usage.begin(), usage.end());
  uint64_t max = *std::max_element(usage.begin(), usage.end());
  EXPECT_LE(max - min, 100u);
}

TEST(SimDfsTest, OutOfSpaceAtCapacity) {
  // 2 nodes x 1000 bytes; replication 2 => capacity 1000 logical bytes.
  SimDfs dfs(SmallCluster(2, 1000, 2, /*block=*/256));
  ASSERT_TRUE(dfs.WriteFile("fits", Lines(50, 10)).ok());  // 500 bytes x2
  Status st = dfs.WriteFile("too-big", Lines(60, 10));     // 600 bytes x2
  EXPECT_TRUE(st.IsOutOfSpace()) << st.ToString();
}

TEST(SimDfsTest, FailedWriteRollsBackPlacement) {
  SimDfs dfs(SmallCluster(2, 1000, 1, /*block=*/256));
  ASSERT_TRUE(dfs.WriteFile("a", Lines(100, 10)).ok());  // 1000 bytes
  uint64_t used_before = dfs.UsedBytes();
  Status st = dfs.WriteFile("b", Lines(150, 10));  // cannot fit
  EXPECT_TRUE(st.IsOutOfSpace());
  EXPECT_EQ(dfs.UsedBytes(), used_before)
      << "partial placements must be rolled back";
  EXPECT_FALSE(dfs.Exists("b"));
}

TEST(SimDfsTest, DeleteReclaimsSpace) {
  SimDfs dfs(SmallCluster(2, 1000, 2, /*block=*/256));
  ASSERT_TRUE(dfs.WriteFile("a", Lines(90, 10)).ok());
  EXPECT_GT(dfs.UsedBytes(), 0u);
  ASSERT_TRUE(dfs.DeleteFile("a").ok());
  EXPECT_EQ(dfs.UsedBytes(), 0u);
  // Space is genuinely reusable.
  ASSERT_TRUE(dfs.WriteFile("b", Lines(90, 10)).ok());
}

TEST(SimDfsTest, CapacityExceededOnlyWhenReplicasDoNotFit) {
  // Replication 2 on 2 nodes: a block needs space on BOTH nodes.
  SimDfs dfs(SmallCluster(2, 500, 2, /*block=*/256));
  ASSERT_TRUE(dfs.WriteFile("half", Lines(40, 10)).ok());  // 400 per node
  Status st = dfs.WriteFile("more", Lines(20, 10));  // needs 200 per node
  EXPECT_TRUE(st.IsOutOfSpace());
}

TEST(SimDfsTest, MetricsAccumulateAndReset) {
  SimDfs dfs(SmallCluster());
  ASSERT_TRUE(dfs.WriteFile("a", {"x", "y"}).ok());
  ASSERT_TRUE(dfs.ReadFile("a").ok());
  ASSERT_TRUE(dfs.ReadFile("a").ok());
  const DfsMetrics& m = dfs.metrics();
  EXPECT_EQ(m.files_created, 1u);
  EXPECT_EQ(m.write_ops, 1u);
  EXPECT_EQ(m.read_ops, 2u);
  EXPECT_EQ(m.bytes_read, 2 * m.bytes_written);
  ASSERT_TRUE(dfs.DeleteFile("a").ok());
  EXPECT_EQ(dfs.metrics().files_deleted, 1u);
  dfs.ResetMetrics();
  EXPECT_EQ(dfs.metrics().bytes_read, 0u);
  EXPECT_EQ(dfs.metrics().files_created, 0u);
}

TEST(SimDfsTest, ListFilesSorted) {
  SimDfs dfs(SmallCluster());
  ASSERT_TRUE(dfs.WriteFile("b", {"1"}).ok());
  ASSERT_TRUE(dfs.WriteFile("a", {"1"}).ok());
  ASSERT_TRUE(dfs.WriteFile("c", {"1"}).ok());
  EXPECT_EQ(dfs.ListFiles(), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SimDfsTest, FreeBytesConsistent) {
  ClusterConfig config = SmallCluster(3, 1000, 1, 256);
  SimDfs dfs(config);
  EXPECT_EQ(dfs.FreeBytes(), config.TotalCapacity());
  ASSERT_TRUE(dfs.WriteFile("a", Lines(30, 10)).ok());
  EXPECT_EQ(dfs.FreeBytes() + dfs.UsedBytes(), config.TotalCapacity());
}

class ReplicationSweepTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ReplicationSweepTest, UsageIsLinearInReplication) {
  uint32_t repl = GetParam();
  SimDfs dfs(SmallCluster(6, 1 << 20, repl, 1024));
  ASSERT_TRUE(dfs.WriteFile("f", Lines(100, 10)).ok());
  EXPECT_EQ(dfs.UsedBytes(), *dfs.FileSize("f") * repl);
}

INSTANTIATE_TEST_SUITE_P(Replication, ReplicationSweepTest,
                         ::testing::Values(1u, 2u, 3u, 6u));

}  // namespace
}  // namespace rdfmr
