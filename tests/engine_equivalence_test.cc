// Content-equivalence across engines (Lemma 1, end to end): for every
// testbed query, every engine must produce exactly the solution set of the
// in-memory ground-truth evaluator, regardless of how it represents its
// intermediates.

#include <gtest/gtest.h>

#include "query/matcher.h"
#include "tests/test_util.h"

namespace rdfmr {
namespace {

using testing_util::AllEngineKinds;
using testing_util::MakeDfsWithBase;
using testing_util::SmallDataset;

struct Case {
  std::string query_id;
  EngineKind engine;
};

std::string CaseName(const ::testing::TestParamInfo<Case>& info) {
  std::string name =
      info.param.query_id + "_" + EngineKindToString(info.param.engine);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

class EquivalenceTest : public ::testing::TestWithParam<Case> {};

TEST_P(EquivalenceTest, MatchesGroundTruth) {
  const Case& param = GetParam();
  auto entry = GetTestbedEntry(param.query_id);
  ASSERT_TRUE(entry.ok()) << entry.status().ToString();
  auto query = GetTestbedQuery(param.query_id);
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  std::vector<Triple> triples = SmallDataset(entry->dataset);
  SolutionSet expected = EvaluateQueryInMemory(**query, triples);
  ASSERT_FALSE(expected.empty())
      << "testbed query " << param.query_id
      << " has an empty ground truth on its dataset; the test is vacuous";

  auto dfs = MakeDfsWithBase(triples);
  ASSERT_NE(dfs, nullptr);
  EngineOptions options;
  options.kind = param.engine;
  options.phi_partitions = 16;  // small data; exercise partition collisions
  auto exec = RunQuery(dfs.get(), "base", *query, options);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  ASSERT_TRUE(exec->stats.ok())
      << "engine failed: " << exec->stats.status.ToString();

  EXPECT_EQ(exec->answers.size(), expected.size());
  EXPECT_TRUE(exec->answers == expected)
      << "answer set mismatch for " << param.query_id << " on "
      << EngineKindToString(param.engine);
}

std::vector<Case> AllCases() {
  std::vector<Case> cases;
  for (const TestbedEntry& entry : TestbedCatalog()) {
    for (EngineKind kind : AllEngineKinds()) {
      cases.push_back(Case{entry.id, kind});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Testbed, EquivalenceTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

}  // namespace
}  // namespace rdfmr
