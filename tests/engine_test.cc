// Integration tests for the engine façade: workflow shapes per engine,
// metric collection, failure reporting, DFS hygiene, and the redundancy
// factor computation.

#include <gtest/gtest.h>

#include "common/strings.h"
#include "engine/engine.h"
#include "query/matcher.h"
#include "tests/test_util.h"

namespace rdfmr {
namespace {

using testing_util::MakeDfsWithBase;
using testing_util::RoomyCluster;
using testing_util::SmallDataset;

Execution RunEngine(SimDfs* dfs, const std::string& query_id, EngineKind kind) {
  auto query = GetTestbedQuery(query_id);
  EXPECT_TRUE(query.ok());
  EngineOptions options;
  options.kind = kind;
  options.phi_partitions = 8;
  auto exec = RunQuery(dfs, "base", *query, options);
  EXPECT_TRUE(exec.ok()) << exec.status().ToString();
  return std::move(*exec);
}

TEST(EngineTest, NtgaUsesFewerCyclesThanRelational) {
  auto dfs = MakeDfsWithBase(SmallDataset(DatasetFamily::kBsbm));
  ASSERT_NE(dfs, nullptr);
  Execution hive = RunEngine(dfs.get(), "B0", EngineKind::kHive);
  Execution pig = RunEngine(dfs.get(), "B0", EngineKind::kPig);
  Execution ntga = RunEngine(dfs.get(), "B0", EngineKind::kNtgaLazy);
  EXPECT_EQ(hive.stats.mr_cycles, 3u);
  EXPECT_EQ(pig.stats.mr_cycles, 3u);
  EXPECT_EQ(ntga.stats.mr_cycles, 2u);
  EXPECT_EQ(ntga.stats.full_scans, 1u);
  EXPECT_EQ(hive.stats.full_scans, 2u);
  EXPECT_GT(pig.stats.full_scans, hive.stats.full_scans);
}

TEST(EngineTest, LazyWritesNoMoreThanEagerNoMoreThanHive) {
  auto dfs = MakeDfsWithBase(SmallDataset(DatasetFamily::kBsbm));
  ASSERT_NE(dfs, nullptr);
  for (const std::string q : {"B1", "B3", "B4"}) {
    Execution hive = RunEngine(dfs.get(), q, EngineKind::kHive);
    Execution eager = RunEngine(dfs.get(), q, EngineKind::kNtgaEager);
    Execution lazy = RunEngine(dfs.get(), q, EngineKind::kNtgaLazy);
    EXPECT_LE(lazy.stats.hdfs_write_bytes, eager.stats.hdfs_write_bytes)
        << q;
    EXPECT_LE(eager.stats.hdfs_write_bytes, hive.stats.hdfs_write_bytes)
        << q;
  }
}

TEST(EngineTest, StatsAreInternallyConsistent) {
  auto dfs = MakeDfsWithBase(SmallDataset(DatasetFamily::kBsbm));
  ASSERT_NE(dfs, nullptr);
  Execution exec = RunEngine(dfs.get(), "B1", EngineKind::kNtgaLazy);
  const ExecStats& s = exec.stats;
  EXPECT_EQ(s.mr_cycles, s.jobs.size());
  EXPECT_EQ(s.planned_cycles, s.mr_cycles);
  uint64_t write_sum = 0;
  for (const JobMetrics& m : s.jobs) write_sum += m.output_bytes;
  EXPECT_EQ(s.hdfs_write_bytes, write_sum);
  EXPECT_EQ(s.intermediate_write_bytes + s.final_output_bytes,
            s.hdfs_write_bytes);
  EXPECT_GT(s.modeled_seconds, 0.0);
  EXPECT_GE(s.peak_dfs_used_bytes, s.hdfs_write_bytes);
}

TEST(EngineTest, CleansAllTemporariesOnSuccess) {
  auto dfs = MakeDfsWithBase(SmallDataset(DatasetFamily::kBsbm));
  ASSERT_NE(dfs, nullptr);
  (void)RunEngine(dfs.get(), "B1", EngineKind::kNtgaLazy);
  EXPECT_EQ(dfs->ListFiles(), (std::vector<std::string>{"base"}));
}

TEST(EngineTest, CleansAllTemporariesOnEngineFailure) {
  ClusterConfig tight = RoomyCluster();
  tight.disk_per_node = 96 << 10;  // barely fits the base
  auto dfs = MakeDfsWithBase(SmallDataset(DatasetFamily::kBsbm), tight);
  ASSERT_NE(dfs, nullptr);
  auto query = GetTestbedQuery("B3");
  ASSERT_TRUE(query.ok());
  EngineOptions options;
  options.kind = EngineKind::kHive;
  auto exec = RunQuery(dfs.get(), "base", *query, options);
  ASSERT_TRUE(exec.ok()) << "engine failure is data, not an error";
  EXPECT_FALSE(exec->stats.ok());
  EXPECT_TRUE(exec->stats.status.IsOutOfSpace());
  EXPECT_GE(exec->stats.failed_job_index, 0);
  EXPECT_EQ(dfs->ListFiles(), (std::vector<std::string>{"base"}));
}

TEST(EngineTest, MissingBaseRejected) {
  SimDfs dfs(RoomyCluster());
  auto query = GetTestbedQuery("B0");
  ASSERT_TRUE(query.ok());
  EngineOptions options;
  auto exec = RunQuery(&dfs, "base", *query, options);
  EXPECT_TRUE(exec.status().IsNotFound());
}

TEST(EngineTest, DecodeTogglePreservesStats) {
  auto dfs = MakeDfsWithBase(SmallDataset(DatasetFamily::kBsbm));
  ASSERT_NE(dfs, nullptr);
  auto query = GetTestbedQuery("B0");
  ASSERT_TRUE(query.ok());
  EngineOptions with;
  with.kind = EngineKind::kNtgaLazy;
  with.decode_answers = true;
  EngineOptions without = with;
  without.decode_answers = false;
  auto a = RunQuery(dfs.get(), "base", *query, with);
  auto b = RunQuery(dfs.get(), "base", *query, without);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(a->answers.empty());
  EXPECT_TRUE(b->answers.empty());
  EXPECT_EQ(a->stats.hdfs_write_bytes, b->stats.hdfs_write_bytes);
  EXPECT_EQ(a->stats.shuffle_bytes, b->stats.shuffle_bytes);
}

TEST(EngineTest, PhiPartitionsAffectOnlyPartialStrategy) {
  auto dfs = MakeDfsWithBase(SmallDataset(DatasetFamily::kBsbm));
  ASSERT_NE(dfs, nullptr);
  auto query = GetTestbedQuery("B1");
  ASSERT_TRUE(query.ok());
  EngineOptions coarse;
  coarse.kind = EngineKind::kNtgaLazyPartial;
  coarse.phi_partitions = 2;
  EngineOptions fine = coarse;
  fine.phi_partitions = 4096;
  auto a = RunQuery(dfs.get(), "base", *query, coarse);
  auto b = RunQuery(dfs.get(), "base", *query, fine);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->answers, b->answers) << "φ_m must not change the answers";
  EXPECT_LE(a->stats.shuffle_bytes, b->stats.shuffle_bytes)
      << "fewer partitions merge more triplegroups through the shuffle";
}

TEST(EngineTest, EngineKindNamesAreDistinct) {
  std::set<std::string> names;
  for (EngineKind kind : testing_util::AllEngineKinds()) {
    names.insert(EngineKindToString(kind));
  }
  EXPECT_EQ(names.size(), 6u);
}

// ---- Redundancy factor --------------------------------------------------------

TEST(RedundancyTest, ZeroForEmptyAndNonTuples) {
  EXPECT_DOUBLE_EQ(ComputeRedundancyFactor({}), 0.0);
  EXPECT_DOUBLE_EQ(ComputeRedundancyFactor({"not a tuple", "still not"}),
                   0.0);
}

TEST(RedundancyTest, RepeatedBoundComponentIsCounted) {
  // Two tuples for one subject repeating the same bound triple.
  std::vector<std::string> lines;
  Triple bound("subject1", "label", "a fairly long label value");
  Triple u1("subject1", "p1", "o1");
  Triple u2("subject1", "p2", "o2");
  auto tuple = [](const Triple& a, const Triple& b) {
    return JoinEscaped({a.subject, a.property, a.object, b.subject,
                        b.property, b.object},
                       '\t');
  };
  lines.push_back(tuple(bound, u1));
  lines.push_back(tuple(bound, u2));
  double r = ComputeRedundancyFactor(lines);
  EXPECT_GT(r, 0.4) << "the bound triple and subject repeats are redundant";
  EXPECT_LT(r, 1.0);
}

TEST(RedundancyTest, DistinctContentHasLowRedundancy) {
  std::vector<std::string> lines = {
      JoinEscaped({"s1", "p1", "o1"}, '\t'),
      JoinEscaped({"s2", "p2", "o2"}, '\t'),
  };
  // Single triples per distinct subject: only the representation overhead.
  EXPECT_LT(ComputeRedundancyFactor(lines), 0.2);
}

}  // namespace
}  // namespace rdfmr
