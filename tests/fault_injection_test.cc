// Failure-injection tests: a write failure injected at EVERY position of a
// workflow must surface as a clean engine failure — correct failed-job
// index, no partial temporary state left behind, and the DFS still usable
// afterwards. Also covers union queries (which ride on the batch path),
// the seeded FaultPlan (spec grammar, scheduled/probabilistic transient
// faults, node loss vs replication), attempt-based task retry with its
// byte-identical-on-recovery contract, and disk-pressure degradation.

#include <gtest/gtest.h>

#include "dfs/fault_plan.h"
#include "engine/advisor.h"
#include "query/matcher.h"
#include "query/sparql_parser.h"
#include "rdf/graph_stats.h"
#include "testing/invariants.h"
#include "tests/test_util.h"

namespace rdfmr {
namespace {

using testing_util::MakeDfsWithBase;
using testing_util::SmallDataset;

TEST(FaultInjectionTest, DfsWriteFailsOnCommandAndRearms) {
  SimDfs dfs(testing_util::RoomyCluster());
  dfs.InjectWriteFailureAfter(2);
  EXPECT_TRUE(dfs.WriteFile("first", {"x"}).ok());
  Status st = dfs.WriteFile("second", {"x"});
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_FALSE(dfs.Exists("second"));
  EXPECT_TRUE(dfs.WriteFile("third", {"x"}).ok())
      << "the injection is one-shot";
}

TEST(FaultInjectionTest, EngineFailsCleanlyAtEveryWritePosition) {
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  auto query = GetTestbedQuery("B1");
  ASSERT_TRUE(query.ok());
  // B1 on NTGA: grouping job demuxes into 2 EC files, then 1 join output:
  // three workflow writes. Fail each one in turn.
  for (uint32_t failing_write = 1; failing_write <= 3; ++failing_write) {
    auto dfs = MakeDfsWithBase(triples);
    ASSERT_NE(dfs, nullptr);
    dfs->InjectWriteFailureAfter(failing_write);
    EngineOptions options;
    options.kind = EngineKind::kNtgaLazy;
    // The legacy one-shot hook models an unrecoverable crash: pin retry
    // off to make explicit that no attempt may mask the failure.
    options.runtime.max_attempts = 1;
    auto exec = RunQuery(dfs.get(), "base", *query, options);
    ASSERT_TRUE(exec.ok()) << "infrastructure must not error";
    EXPECT_FALSE(exec->stats.ok()) << "write " << failing_write;
    EXPECT_EQ(exec->stats.status.code(), StatusCode::kIoError);
    EXPECT_GE(exec->stats.failed_job_index, 0);
    EXPECT_EQ(dfs->ListFiles(), (std::vector<std::string>{"base"}))
        << "no temporaries may survive a failure at write "
        << failing_write;
    // The DFS remains usable: the same query succeeds afterwards.
    auto retry = RunQuery(dfs.get(), "base", *query, options);
    ASSERT_TRUE(retry.ok());
    EXPECT_TRUE(retry->stats.ok());
  }
}

TEST(FaultInjectionTest, RelationalEngineAlsoFailsCleanly) {
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  auto query = GetTestbedQuery("B0");
  ASSERT_TRUE(query.ok());
  for (uint32_t failing_write = 1; failing_write <= 3; ++failing_write) {
    auto dfs = MakeDfsWithBase(triples);
    ASSERT_NE(dfs, nullptr);
    dfs->InjectWriteFailureAfter(failing_write);
    EngineOptions options;
    options.kind = EngineKind::kHive;
    options.runtime.max_attempts = 1;  // the legacy hook is unrecoverable
    auto exec = RunQuery(dfs.get(), "base", *query, options);
    ASSERT_TRUE(exec.ok());
    EXPECT_FALSE(exec->stats.ok());
    EXPECT_EQ(exec->stats.failed_job_index,
              static_cast<int>(failing_write) - 1)
        << "Hive's B0 plan writes once per job";
    EXPECT_EQ(dfs->ListFiles(), (std::vector<std::string>{"base"}));
  }
}

TEST(FaultInjectionTest, BatchFailureLeavesNoState) {
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  std::vector<std::shared_ptr<const GraphPatternQuery>> queries;
  for (const char* id : {"B0", "B1"}) {
    auto q = GetTestbedQuery(id);
    ASSERT_TRUE(q.ok());
    queries.push_back(*q);
  }
  auto dfs = MakeDfsWithBase(triples);
  ASSERT_NE(dfs, nullptr);
  dfs->InjectWriteFailureAfter(4);
  EngineOptions options;
  options.kind = EngineKind::kNtgaLazy;
  auto batch = RunQueryBatch(dfs.get(), "base", queries, options);
  ASSERT_TRUE(batch.ok());
  EXPECT_FALSE(batch->stats.ok());
  EXPECT_EQ(dfs->ListFiles(), (std::vector<std::string>{"base"}));
}

// ---- FaultPlan spec grammar -----------------------------------------------

TEST(FaultPlanTest, ParseRoundTripsThroughToString) {
  auto plan =
      FaultPlan::Parse("seed=7,pread=0.05,write@3,lose-node@40:2");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->seed, 7u);
  EXPECT_DOUBLE_EQ(plan->read_failure_prob, 0.05);
  EXPECT_EQ(plan->fail_writes, (std::vector<uint64_t>{3}));
  ASSERT_EQ(plan->node_faults.size(), 1u);
  EXPECT_EQ(plan->node_faults[0].after_ops, 40u);
  EXPECT_EQ(plan->node_faults[0].node, 2u);
  EXPECT_EQ(plan->node_faults[0].kind, FaultPlan::NodeFaultKind::kLoss);

  auto replayed = FaultPlan::Parse(plan->ToString());
  ASSERT_TRUE(replayed.ok()) << plan->ToString();
  EXPECT_EQ(replayed->ToString(), plan->ToString());
}

TEST(FaultPlanTest, ParseRejectsMalformedSpecs) {
  for (const char* bad :
       {"read@0", "pread=1.5", "pwrite=-0.1", "bogus=1", "lose-node@5",
        "fill-node@x:1", "seed=", "read@two"}) {
    EXPECT_FALSE(FaultPlan::Parse(bad).ok()) << bad;
  }
}

TEST(FaultPlanTest, SetFaultPlanRejectsOutOfRangeNode) {
  SimDfs dfs(testing_util::RoomyCluster());  // 8 nodes
  auto plan = FaultPlan::Parse("lose-node@0:8");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(dfs.SetFaultPlan(*plan).IsInvalidArgument());
}

TEST(FaultPlanTest, ScheduledOrdinalsFailExactlyOnce) {
  SimDfs dfs(testing_util::RoomyCluster());
  FaultPlan plan;
  plan.fail_writes = {2};
  plan.fail_reads = {2};
  ASSERT_TRUE(dfs.SetFaultPlan(plan).ok());
  EXPECT_TRUE(dfs.WriteFile("a", {"x"}).ok());        // write op 1
  EXPECT_TRUE(dfs.WriteFile("b", {"x"}).IsIoError()); // write op 2
  EXPECT_FALSE(dfs.Exists("b"));
  EXPECT_TRUE(dfs.WriteFile("b", {"x"}).ok());        // write op 3
  EXPECT_TRUE(dfs.ReadFile("a").ok());                // read op 1
  EXPECT_TRUE(dfs.ReadFile("a").status().IsIoError());  // read op 2
  EXPECT_TRUE(dfs.ReadFile("a").ok());                // read op 3
}

// ---- Node loss vs replication ---------------------------------------------

TEST(FaultPlanTest, NodeLossUnderReplication1IsPermanent) {
  ClusterConfig cluster = testing_util::RoomyCluster();
  cluster.num_nodes = 2;
  cluster.block_size = 16;  // several blocks, spread over both nodes
  SimDfs dfs(cluster);
  ASSERT_TRUE(dfs.WriteFile("base", {"aaaaaaaaaaaaaaa", "bbbbbbbbbbbbbbb",
                                     "ccccccccccccccc", "ddddddddddddddd"})
                  .ok());
  auto plan = FaultPlan::Parse("lose-node@0:0");
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(dfs.SetFaultPlan(*plan).ok());
  Result<std::vector<std::string>> read = dfs.ReadFile("base");
  ASSERT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsUnavailable()) << read.status().ToString();
  // Retrying cannot help: the replicas are gone, not flaky.
  EXPECT_TRUE(dfs.ReadFile("base").status().IsUnavailable());
  // Reviving the node (plan cleared) restores availability: the namespace
  // never forgets contents, only serves them from live nodes.
  dfs.ClearFaultPlan();
  EXPECT_TRUE(dfs.ReadFile("base").ok());
}

TEST(FaultPlanTest, NodeLossUnderReplication2IsSurvivable) {
  ClusterConfig cluster = testing_util::RoomyCluster();
  cluster.num_nodes = 2;
  cluster.replication = 2;  // every block on both nodes
  cluster.block_size = 16;
  SimDfs dfs(cluster);
  ASSERT_TRUE(dfs.WriteFile("base", {"aaaaaaaaaaaaaaa", "bbbbbbbbbbbbbbb",
                                     "ccccccccccccccc", "ddddddddddddddd"})
                  .ok());
  auto plan = FaultPlan::Parse("lose-node@0:0");
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(dfs.SetFaultPlan(*plan).ok());
  EXPECT_TRUE(dfs.ReadFile("base").ok())
      << "the second replica must keep every block readable";
}

TEST(FaultPlanTest, EngineSurvivesNodeLossUnderReplication2) {
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  auto query = GetTestbedQuery("B1");
  ASSERT_TRUE(query.ok());
  ClusterConfig cluster = testing_util::RoomyCluster();
  cluster.replication = 2;

  EngineOptions options;
  options.kind = EngineKind::kNtgaLazy;
  auto baseline_dfs = MakeDfsWithBase(triples, cluster);
  ASSERT_NE(baseline_dfs, nullptr);
  auto baseline = RunQuery(baseline_dfs.get(), "base", *query, options);
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(baseline->stats.ok());

  auto dfs = MakeDfsWithBase(triples, cluster);
  ASSERT_NE(dfs, nullptr);
  auto plan = FaultPlan::Parse("lose-node@3:1");
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(dfs->SetFaultPlan(*plan).ok());
  auto exec = RunQuery(dfs.get(), "base", *query, options);
  ASSERT_TRUE(exec.ok());
  ASSERT_TRUE(exec->stats.ok())
      << "replication 2 must ride out one node loss: "
      << exec->stats.status.ToString();
  EXPECT_TRUE(exec->answers == baseline->answers);
  EXPECT_TRUE(
      fuzz::CompareStatsIgnoringWallTimes(baseline->stats, exec->stats)
          .empty());
}

// ---- Attempt-based retry --------------------------------------------------

TEST(TaskRetryTest, ScheduledReadFailureIsRetriedAndAccounted) {
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  auto query = GetTestbedQuery("B1");
  ASSERT_TRUE(query.ok());

  EngineOptions options;
  options.kind = EngineKind::kNtgaLazy;
  auto baseline_dfs = MakeDfsWithBase(triples);
  ASSERT_NE(baseline_dfs, nullptr);
  auto baseline = RunQuery(baseline_dfs.get(), "base", *query, options);
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(baseline->stats.ok());

  auto dfs = MakeDfsWithBase(triples);
  ASSERT_NE(dfs, nullptr);
  FaultPlan plan;
  plan.fail_reads = {1};  // the workflow's very first input scan
  ASSERT_TRUE(dfs->SetFaultPlan(plan).ok());
  options.runtime.max_attempts = 2;
  auto exec = RunQuery(dfs.get(), "base", *query, options);
  ASSERT_TRUE(exec.ok());
  ASSERT_TRUE(exec->stats.ok()) << exec->stats.status.ToString();
  EXPECT_EQ(exec->stats.tasks_retried, 1u);
  EXPECT_EQ(exec->stats.task_attempts, 2u);
  EXPECT_GT(exec->stats.wasted_bytes, 0u);
  EXPECT_GT(exec->stats.retry_backoff_seconds, 0.0);

  // The recovery is invisible everywhere else: answers and every
  // deterministic stat are byte-identical to the fault-free run (the
  // comparator excludes only host wall times and the retry accounting).
  EXPECT_TRUE(exec->answers == baseline->answers);
  EXPECT_TRUE(
      fuzz::CompareStatsIgnoringWallTimes(baseline->stats, exec->stats)
          .empty());
  EXPECT_EQ(baseline->stats.hdfs_read_bytes, exec->stats.hdfs_read_bytes)
      << "a failed attempt must meter nothing";
}

TEST(TaskRetryTest, RetryExhaustionSurfacesAsCleanEngineFailure) {
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  auto query = GetTestbedQuery("B1");
  ASSERT_TRUE(query.ok());
  auto dfs = MakeDfsWithBase(triples);
  ASSERT_NE(dfs, nullptr);
  FaultPlan plan;
  plan.fail_reads = {1, 2};  // first read and its only retry
  ASSERT_TRUE(dfs->SetFaultPlan(plan).ok());
  EngineOptions options;
  options.kind = EngineKind::kNtgaLazy;
  options.runtime.max_attempts = 2;
  auto exec = RunQuery(dfs.get(), "base", *query, options);
  ASSERT_TRUE(exec.ok()) << "exhaustion is a measured failure, not an "
                            "infrastructure error";
  EXPECT_FALSE(exec->stats.ok());
  EXPECT_TRUE(exec->stats.status.IsIoError());
  EXPECT_EQ(exec->stats.failed_job_index, 0);
  EXPECT_EQ(exec->stats.tasks_retried, 1u);
  EXPECT_EQ(exec->stats.task_attempts, 2u);
  EXPECT_EQ(dfs->ListFiles(), (std::vector<std::string>{"base"}))
      << "no temporaries may survive the failure";
  // The DFS is healthy once the plan is lifted.
  dfs->ClearFaultPlan();
  auto retry = RunQuery(dfs.get(), "base", *query, options);
  ASSERT_TRUE(retry.ok());
  EXPECT_TRUE(retry->stats.ok());
}

TEST(TaskRetryTest, RecoveredRunIsByteIdenticalAcrossThreadCounts) {
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  auto query = GetTestbedQuery("B1");
  ASSERT_TRUE(query.ok());
  // Small blocks so 4 host threads genuinely interleave map tasks.
  ClusterConfig cluster = testing_util::RoomyCluster();
  cluster.block_size = 2048;

  for (EngineKind kind : testing_util::AllEngineKinds()) {
    EngineOptions options;
    options.kind = kind;
    options.phi_partitions = 16;
    auto baseline_dfs = MakeDfsWithBase(triples, cluster);
    ASSERT_NE(baseline_dfs, nullptr);
    auto baseline = RunQuery(baseline_dfs.get(), "base", *query, options);
    ASSERT_TRUE(baseline.ok());
    ASSERT_TRUE(baseline->stats.ok());

    std::optional<ExecStats> faulty_reference;
    for (uint32_t threads : {1u, 4u}) {
      auto dfs = MakeDfsWithBase(triples, cluster);
      ASSERT_NE(dfs, nullptr);
      FaultPlan plan;
      plan.seed = 17;
      plan.read_failure_prob = 0.10;
      plan.write_failure_prob = 0.05;
      ASSERT_TRUE(dfs->SetFaultPlan(plan).ok());
      EngineOptions faulty_options = options;
      faulty_options.runtime.num_threads = threads;
      faulty_options.runtime.max_attempts = 16;  // effectively never exhausts
      auto exec = RunQuery(dfs.get(), "base", *query, faulty_options);
      ASSERT_TRUE(exec.ok());
      ASSERT_TRUE(exec->stats.ok())
          << EngineKindToString(kind) << " t=" << threads << ": "
          << exec->stats.status.ToString();
      EXPECT_TRUE(exec->answers == baseline->answers)
          << EngineKindToString(kind) << " t=" << threads;
      std::vector<std::string> diffs =
          fuzz::CompareStatsIgnoringWallTimes(baseline->stats, exec->stats);
      EXPECT_TRUE(diffs.empty())
          << EngineKindToString(kind) << " t=" << threads << ": "
          << (diffs.empty() ? "" : diffs.front());
      if (!faulty_reference.has_value()) {
        faulty_reference = exec->stats;
      } else {
        // The injected fault sequence itself is thread-count invariant,
        // so even the retry accounting must match exactly.
        EXPECT_EQ(faulty_reference->tasks_retried,
                  exec->stats.tasks_retried)
            << EngineKindToString(kind);
        EXPECT_EQ(faulty_reference->task_attempts,
                  exec->stats.task_attempts)
            << EngineKindToString(kind);
        EXPECT_EQ(faulty_reference->wasted_bytes, exec->stats.wasted_bytes)
            << EngineKindToString(kind);
        EXPECT_EQ(faulty_reference->retry_backoff_seconds,
                  exec->stats.retry_backoff_seconds)
            << EngineKindToString(kind);
      }
    }
  }
}

// ---- Disk-pressure preflight ----------------------------------------------

// Calibrates a cluster whose capacity sits strictly between the advisor's
// lazy and eager projected peaks for B3 (double unbound star: the eager
// footprint dwarfs the lazy one), so kDegrade has somewhere to go.
ClusterConfig PressuredCluster(const std::vector<Triple>& triples,
                               const GraphPatternQuery& query) {
  ClusterConfig cluster = testing_util::RoomyCluster();
  // RoomyCluster's 4 MB blocks would put the whole base file in one block,
  // which no single node of the shrunken cluster could hold; small blocks
  // let placement spread the data evenly.
  cluster.block_size = 1024;
  GraphStats stats = GraphStats::Compute(triples);
  StrategyAdvice advice = AdviseStrategy(query, stats, cluster);
  uint64_t used = 0;
  for (const std::string& line : SerializeTriples(triples)) {
    used += line.size() + 1;
  }
  used *= cluster.replication;
  FootprintProjection lazy =
      ProjectFootprint(advice, "lazy", used, cluster);
  FootprintProjection eager =
      ProjectFootprint(advice, "eager", used, cluster);
  EXPECT_LT(lazy.peak_bytes, eager.peak_bytes);
  const uint64_t capacity = (lazy.peak_bytes + eager.peak_bytes) / 2;
  cluster.disk_per_node = capacity / cluster.num_nodes + 1;
  return cluster;
}

TEST(DiskPressureTest, DegradePolicySwitchesEagerToLazy) {
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  auto query = GetTestbedQuery("B3");
  ASSERT_TRUE(query.ok());
  ClusterConfig cluster = PressuredCluster(triples, **query);

  EngineOptions lazy_options;
  lazy_options.kind = EngineKind::kNtgaLazy;
  auto lazy_dfs = MakeDfsWithBase(triples, cluster);
  ASSERT_NE(lazy_dfs, nullptr);
  auto lazy = RunQuery(lazy_dfs.get(), "base", *query, lazy_options);
  ASSERT_TRUE(lazy.ok());
  ASSERT_TRUE(lazy->stats.ok());

  auto dfs = MakeDfsWithBase(triples, cluster);
  ASSERT_NE(dfs, nullptr);
  EngineOptions options;
  options.kind = EngineKind::kNtgaEager;
  options.disk_pressure = DiskPressurePolicy::kDegrade;
  auto exec = RunQuery(dfs.get(), "base", *query, options);
  ASSERT_TRUE(exec.ok());
  ASSERT_TRUE(exec->stats.ok()) << exec->stats.status.ToString();
  EXPECT_EQ(exec->stats.degraded_from, "EagerUnnest");
  EXPECT_FALSE(exec->stats.preflight.empty());
  EXPECT_TRUE(exec->answers == lazy->answers);
  // The degraded run IS the lazy run: identical on every deterministic
  // stat (the comparator ignores the degradation annotations).
  EXPECT_TRUE(
      fuzz::CompareStatsIgnoringWallTimes(lazy->stats, exec->stats)
          .empty());
}

TEST(DiskPressureTest, FailFastRefusesWithResourceExhausted) {
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  auto query = GetTestbedQuery("B3");
  ASSERT_TRUE(query.ok());
  ClusterConfig cluster = PressuredCluster(triples, **query);
  auto dfs = MakeDfsWithBase(triples, cluster);
  ASSERT_NE(dfs, nullptr);
  EngineOptions options;
  options.kind = EngineKind::kNtgaEager;
  options.disk_pressure = DiskPressurePolicy::kFailFast;
  auto exec = RunQuery(dfs.get(), "base", *query, options);
  ASSERT_TRUE(exec.ok()) << "a refusal is a measured failure";
  EXPECT_FALSE(exec->stats.ok());
  EXPECT_TRUE(exec->stats.status.IsResourceExhausted())
      << exec->stats.status.ToString();
  EXPECT_EQ(exec->stats.failed_job_index, 0);
  EXPECT_EQ(exec->stats.mr_cycles, 0u) << "no MR cycle may burn";
  EXPECT_GT(exec->stats.planned_cycles, 0u);
  EXPECT_EQ(dfs->ListFiles(), (std::vector<std::string>{"base"}));
  // The same options succeed when the projection fits: a roomy cluster
  // clears the preflight and runs normally.
  auto roomy = MakeDfsWithBase(triples);
  ASSERT_NE(roomy, nullptr);
  auto ok_exec = RunQuery(roomy.get(), "base", *query, options);
  ASSERT_TRUE(ok_exec.ok());
  EXPECT_TRUE(ok_exec->stats.ok()) << ok_exec->stats.status.ToString();
  EXPECT_TRUE(ok_exec->stats.degraded_from.empty());
  EXPECT_FALSE(ok_exec->stats.preflight.empty());
}

// ---- Union queries --------------------------------------------------------------

TEST(UnionTest, UnionOfBranchesEqualsUnionOfOracles) {
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBio2Rdf);
  // The ontological-rewriting shape: "things related to a GO term" as the
  // union of two conjunctive rewritings.
  auto branch1 = ParseSparql("via-unbound", R"(SELECT * WHERE {
    ?g <label> ?l . ?g ?up ?x . FILTER(CONTAINS(STR(?x), "go_")) })");
  auto branch2 = ParseSparql("via-subtype", R"(SELECT * WHERE {
    ?g <label> ?l . ?g <subType> ?st . })");
  ASSERT_TRUE(branch1.ok() && branch2.ok());
  std::vector<std::shared_ptr<const GraphPatternQuery>> branches = {
      std::make_shared<const GraphPatternQuery>(branch1.MoveValueUnsafe()),
      std::make_shared<const GraphPatternQuery>(branch2.MoveValueUnsafe()),
  };
  SolutionSet oracle;
  for (const auto& branch : branches) {
    SolutionSet part = EvaluateQueryInMemory(*branch, triples);
    oracle.insert(part.begin(), part.end());
  }
  ASSERT_FALSE(oracle.empty());

  auto dfs = MakeDfsWithBase(triples);
  ASSERT_NE(dfs, nullptr);
  EngineOptions options;
  options.kind = EngineKind::kNtgaLazy;
  auto exec = RunUnionQuery(dfs.get(), "base", branches, options);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  ASSERT_TRUE(exec->stats.ok());
  EXPECT_TRUE(exec->answers == oracle);
  EXPECT_EQ(exec->stats.full_scans, 1u)
      << "the union shares the grouping cycle";
}

}  // namespace
}  // namespace rdfmr
