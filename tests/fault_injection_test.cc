// Failure-injection tests: a write failure injected at EVERY position of a
// workflow must surface as a clean engine failure — correct failed-job
// index, no partial temporary state left behind, and the DFS still usable
// afterwards. Also covers union queries (which ride on the batch path).

#include <gtest/gtest.h>

#include "query/matcher.h"
#include "query/sparql_parser.h"
#include "tests/test_util.h"

namespace rdfmr {
namespace {

using testing_util::MakeDfsWithBase;
using testing_util::SmallDataset;

TEST(FaultInjectionTest, DfsWriteFailsOnCommandAndRearms) {
  SimDfs dfs(testing_util::RoomyCluster());
  dfs.InjectWriteFailureAfter(2);
  EXPECT_TRUE(dfs.WriteFile("first", {"x"}).ok());
  Status st = dfs.WriteFile("second", {"x"});
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_FALSE(dfs.Exists("second"));
  EXPECT_TRUE(dfs.WriteFile("third", {"x"}).ok())
      << "the injection is one-shot";
}

TEST(FaultInjectionTest, EngineFailsCleanlyAtEveryWritePosition) {
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  auto query = GetTestbedQuery("B1");
  ASSERT_TRUE(query.ok());
  // B1 on NTGA: grouping job demuxes into 2 EC files, then 1 join output:
  // three workflow writes. Fail each one in turn.
  for (uint32_t failing_write = 1; failing_write <= 3; ++failing_write) {
    auto dfs = MakeDfsWithBase(triples);
    ASSERT_NE(dfs, nullptr);
    dfs->InjectWriteFailureAfter(failing_write);
    EngineOptions options;
    options.kind = EngineKind::kNtgaLazy;
    auto exec = RunQuery(dfs.get(), "base", *query, options);
    ASSERT_TRUE(exec.ok()) << "infrastructure must not error";
    EXPECT_FALSE(exec->stats.ok()) << "write " << failing_write;
    EXPECT_EQ(exec->stats.status.code(), StatusCode::kIoError);
    EXPECT_GE(exec->stats.failed_job_index, 0);
    EXPECT_EQ(dfs->ListFiles(), (std::vector<std::string>{"base"}))
        << "no temporaries may survive a failure at write "
        << failing_write;
    // The DFS remains usable: the same query succeeds afterwards.
    auto retry = RunQuery(dfs.get(), "base", *query, options);
    ASSERT_TRUE(retry.ok());
    EXPECT_TRUE(retry->stats.ok());
  }
}

TEST(FaultInjectionTest, RelationalEngineAlsoFailsCleanly) {
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  auto query = GetTestbedQuery("B0");
  ASSERT_TRUE(query.ok());
  for (uint32_t failing_write = 1; failing_write <= 3; ++failing_write) {
    auto dfs = MakeDfsWithBase(triples);
    ASSERT_NE(dfs, nullptr);
    dfs->InjectWriteFailureAfter(failing_write);
    EngineOptions options;
    options.kind = EngineKind::kHive;
    auto exec = RunQuery(dfs.get(), "base", *query, options);
    ASSERT_TRUE(exec.ok());
    EXPECT_FALSE(exec->stats.ok());
    EXPECT_EQ(exec->stats.failed_job_index,
              static_cast<int>(failing_write) - 1)
        << "Hive's B0 plan writes once per job";
    EXPECT_EQ(dfs->ListFiles(), (std::vector<std::string>{"base"}));
  }
}

TEST(FaultInjectionTest, BatchFailureLeavesNoState) {
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  std::vector<std::shared_ptr<const GraphPatternQuery>> queries;
  for (const char* id : {"B0", "B1"}) {
    auto q = GetTestbedQuery(id);
    ASSERT_TRUE(q.ok());
    queries.push_back(*q);
  }
  auto dfs = MakeDfsWithBase(triples);
  ASSERT_NE(dfs, nullptr);
  dfs->InjectWriteFailureAfter(4);
  EngineOptions options;
  options.kind = EngineKind::kNtgaLazy;
  auto batch = RunQueryBatch(dfs.get(), "base", queries, options);
  ASSERT_TRUE(batch.ok());
  EXPECT_FALSE(batch->stats.ok());
  EXPECT_EQ(dfs->ListFiles(), (std::vector<std::string>{"base"}));
}

// ---- Union queries --------------------------------------------------------------

TEST(UnionTest, UnionOfBranchesEqualsUnionOfOracles) {
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBio2Rdf);
  // The ontological-rewriting shape: "things related to a GO term" as the
  // union of two conjunctive rewritings.
  auto branch1 = ParseSparql("via-unbound", R"(SELECT * WHERE {
    ?g <label> ?l . ?g ?up ?x . FILTER(CONTAINS(STR(?x), "go_")) })");
  auto branch2 = ParseSparql("via-subtype", R"(SELECT * WHERE {
    ?g <label> ?l . ?g <subType> ?st . })");
  ASSERT_TRUE(branch1.ok() && branch2.ok());
  std::vector<std::shared_ptr<const GraphPatternQuery>> branches = {
      std::make_shared<const GraphPatternQuery>(branch1.MoveValueUnsafe()),
      std::make_shared<const GraphPatternQuery>(branch2.MoveValueUnsafe()),
  };
  SolutionSet oracle;
  for (const auto& branch : branches) {
    SolutionSet part = EvaluateQueryInMemory(*branch, triples);
    oracle.insert(part.begin(), part.end());
  }
  ASSERT_FALSE(oracle.empty());

  auto dfs = MakeDfsWithBase(triples);
  ASSERT_NE(dfs, nullptr);
  EngineOptions options;
  options.kind = EngineKind::kNtgaLazy;
  auto exec = RunUnionQuery(dfs.get(), "base", branches, options);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  ASSERT_TRUE(exec->stats.ok());
  EXPECT_TRUE(exec->answers == oracle);
  EXPECT_EQ(exec->stats.full_scans, 1u)
      << "the union shares the grouping cycle";
}

}  // namespace
}  // namespace rdfmr
