// Differential fuzz harness tests: deterministic replay of the seeded
// corpus, generator guarantees, metrics-invariant checking on known
// executions, shrinking behaviour, and the end-to-end injected-bug drill
// (a flipped β group-filter predicate must be caught and shrunk to a
// minimal repro).

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "ntga/operators.h"
#include "query/matcher.h"
#include "testing/differential.h"
#include "testing/graph_gen.h"
#include "testing/invariants.h"
#include "testing/query_gen.h"

namespace rdfmr {
namespace fuzz {
namespace {

// Restores the production β group-filter even when a test fails mid-body.
class BetaFlipGuard {
 public:
  explicit BetaFlipGuard(bool enabled) {
    SetBetaGroupFilterFlipForTesting(enabled);
  }
  ~BetaFlipGuard() { SetBetaGroupFilterFlipForTesting(false); }
};

TEST(GraphGenTest, DeterministicSortedAndDuplicateFree) {
  GraphGenConfig config;
  Rng rng1(7), rng2(7);
  std::vector<Triple> a = GenerateGraph(config, &rng1);
  std::vector<Triple> b = GenerateGraph(config, &rng2);
  EXPECT_EQ(a, b) << "same seed must generate the same graph";
  ASSERT_FALSE(a.empty());
  std::set<Triple> distinct(a.begin(), a.end());
  EXPECT_EQ(distinct.size(), a.size()) << "no duplicate triples";
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  std::set<std::string> subjects;
  for (const Triple& t : a) subjects.insert(t.subject);
  EXPECT_EQ(subjects.size(), config.num_subjects)
      << "every subject gets at least one triple";
}

TEST(QueryGenTest, AlwaysProducesValidQueries) {
  GraphGenConfig graph_config;
  QueryGenConfig query_config;
  GraphVocabulary vocab = VocabularyOf(graph_config);
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    GeneratedQuery q = GenerateQuery(query_config, vocab, &rng);
    ASSERT_NE(q.query, nullptr);
    ASSERT_FALSE(q.query->stars().empty());
    // GenerateQuery RDFMR_CHECKs Create() internally; re-building from the
    // raw patterns must agree (the shrinker depends on this round trip).
    auto rebuilt = GraphPatternQuery::Create("rebuild", q.patterns);
    EXPECT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
    if (q.aggregate.has_value()) {
      EXPECT_TRUE(q.aggregate->Validate(*q.query).ok());
    }
  }
}

TEST(QueryGenTest, MinUnboundIsHonored) {
  GraphGenConfig graph_config;
  QueryGenConfig query_config;
  query_config.unbound_prob = 0.0;
  query_config.min_unbound = 1;
  GraphVocabulary vocab = VocabularyOf(graph_config);
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    GeneratedQuery q = GenerateQuery(query_config, vocab, &rng);
    EXPECT_GE(q.query->NumUnbound(), 1u);
  }
}

TEST(FuzzCaseTest, MakeCaseIsDeterministicAndIndexIndependent) {
  FuzzOptions options;
  options.seed = 5;
  FuzzCase a = MakeCase(options, 3);
  FuzzCase b = MakeCase(options, 3);
  EXPECT_EQ(a.triples, b.triples);
  EXPECT_EQ(a.patterns, b.patterns);
  EXPECT_EQ(a.aggregate.has_value(), b.aggregate.has_value());
  FuzzCase c = MakeCase(options, 4);
  EXPECT_NE(a.triples, c.triples) << "different indexes, different cases";
}

// The seeded corpus the CI smoke run covers in depth; replaying a fixed
// prefix here keeps engine regressions visible inside plain ctest even
// when the fuzz_smoke label is not scheduled.
TEST(FuzzRegressionTest, SeedOneCorpusPrefixIsClean) {
  FuzzOptions options;
  options.seed = 1;
  size_t nonempty = 0;
  for (uint64_t i = 0; i < 25; ++i) {
    FuzzCase fuzz_case = MakeCase(options, i);
    CaseOutcome outcome = RunCase(fuzz_case, options.diff);
    EXPECT_FALSE(outcome.query_invalid) << fuzz_case.name;
    EXPECT_TRUE(outcome.ok())
        << fuzz_case.name << ": "
        << (outcome.violations.empty() ? "" : outcome.violations.front());
    nonempty += outcome.expected_answers > 0 ? 1 : 0;
  }
  EXPECT_GT(nonempty, 0u)
      << "the corpus prefix must include cases with answers";
}

// Hand-written shapes that once needed special care in the generators:
// a multi-valued unbound star with a CONTAINS filter, and a chained star
// joining through an unbound pattern's object.
TEST(FuzzRegressionTest, UnboundContainsStarAcrossAllEngines) {
  FuzzCase fuzz_case;
  fuzz_case.name = "unbound-contains";
  fuzz_case.triples = {
      {"s0", "p0", "lit tok1 n0"}, {"s0", "p0", "lit tok2 n1"},
      {"s0", "p1", "o3"},          {"s1", "p0", "lit tok1 n2"},
      {"s1", "p2", "o3"},
  };
  TriplePattern bound;
  bound.subject = NodePattern::Var("qs0");
  bound.property = "p1";
  bound.object = NodePattern::Const("o3");
  TriplePattern unbound;
  unbound.subject = NodePattern::Var("qs0");
  unbound.property_bound = false;
  unbound.property = "up0";
  unbound.object = NodePattern::Var("v0", "tok1");
  fuzz_case.patterns = {bound, unbound};
  CaseOutcome outcome = RunCase(fuzz_case, DifferentialConfig());
  EXPECT_TRUE(outcome.ok())
      << (outcome.violations.empty() ? "" : outcome.violations.front());
  EXPECT_EQ(outcome.expected_answers, 1u);
}

TEST(FuzzRegressionTest, ChainedStarsJoinedThroughUnboundObject) {
  FuzzCase fuzz_case;
  fuzz_case.name = "chain-on-unbound";
  fuzz_case.triples = {
      {"s0", "p0", "s1"}, {"s0", "p1", "o0"}, {"s1", "p2", "o1"},
      {"s2", "p0", "s1"}, {"s1", "p3", "o2"},
  };
  TriplePattern hop;
  hop.subject = NodePattern::Var("qs0");
  hop.property_bound = false;
  hop.property = "up0";
  hop.object = NodePattern::Var("qs1");
  TriplePattern leaf;
  leaf.subject = NodePattern::Var("qs1");
  leaf.property = "p2";
  leaf.object = NodePattern::Var("v0");
  fuzz_case.patterns = {hop, leaf};
  CaseOutcome outcome = RunCase(fuzz_case, DifferentialConfig());
  EXPECT_TRUE(outcome.ok())
      << (outcome.violations.empty() ? "" : outcome.violations.front());
  EXPECT_GT(outcome.expected_answers, 0u);
}

TEST(InvariantTest, CleanExecutionPassesAndTamperedStatsFail) {
  FuzzOptions options;
  options.seed = 2;
  // Find a corpus case with answers so the stats are nontrivial.
  FuzzCase fuzz_case;
  for (uint64_t i = 0;; ++i) {
    ASSERT_LT(i, 100u) << "no case with answers in the first 100";
    fuzz_case = MakeCase(options, i);
    auto built = GraphPatternQuery::Create(fuzz_case.name,
                                           fuzz_case.patterns);
    ASSERT_TRUE(built.ok());
    auto query = std::make_shared<const GraphPatternQuery>(
        built.MoveValueUnsafe());
    if (!EvaluateQueryInMemory(*query, fuzz_case.triples).empty()) break;
  }
  CaseOutcome outcome = RunCase(fuzz_case, DifferentialConfig());
  ASSERT_TRUE(outcome.ok())
      << (outcome.violations.empty() ? "" : outcome.violations.front());

  // Now execute once directly and tamper with the stats: the checker must
  // flag each broken identity.
  DifferentialConfig config;
  SimDfs dfs(config.cluster);
  auto built = GraphPatternQuery::Create(fuzz_case.name, fuzz_case.patterns);
  ASSERT_TRUE(built.ok());
  auto query =
      std::make_shared<const GraphPatternQuery>(built.MoveValueUnsafe());
  ASSERT_TRUE(
      dfs.WriteFile("base", SerializeTriples(fuzz_case.triples)).ok());
  EngineOptions engine_options;
  engine_options.kind = EngineKind::kNtgaLazy;
  engine_options.phi_partitions = config.phi_partitions;
  auto exec = RunQuery(&dfs, "base", query, engine_options);
  ASSERT_TRUE(exec.ok());
  ASSERT_TRUE(exec->stats.ok());
  InvariantContext ctx;
  ctx.base_bytes_replicated = *dfs.FileSize("base");
  ctx.ntga_engine = true;
  EXPECT_TRUE(CheckStatsInvariants(exec->stats, ctx).empty());

  ExecStats bad_shuffle = exec->stats;
  bad_shuffle.shuffle_bytes += 1;
  EXPECT_FALSE(CheckStatsInvariants(bad_shuffle, ctx).empty());

  ExecStats bad_split = exec->stats;
  bad_split.intermediate_write_bytes += 1;
  EXPECT_FALSE(CheckStatsInvariants(bad_split, ctx).empty());

  ExecStats bad_peak = exec->stats;
  bad_peak.peak_dfs_used_bytes = 0;
  EXPECT_FALSE(CheckStatsInvariants(bad_peak, ctx).empty());

  ExecStats bad_redundancy = exec->stats;
  bad_redundancy.redundancy_factor = 0.5;
  EXPECT_FALSE(CheckStatsInvariants(bad_redundancy, ctx).empty())
      << "an NTGA engine reporting relational-level redundancy must trip";

  ExecStats bad_job = exec->stats;
  ASSERT_FALSE(bad_job.jobs.empty());
  bad_job.jobs[0].map_direct_output_bytes += 1;
  bad_job.jobs[0].map_output_bytes += 1;
  EXPECT_FALSE(CheckStatsInvariants(bad_job, ctx).empty())
      << "metering the same volume as both shuffle and direct must trip";
}

TEST(InvariantTest, CompareStatsIgnoresOnlyWallTimes) {
  ExecStats a;
  a.engine = "x";
  a.shuffle_bytes = 10;
  ExecStats b = a;
  b.map_seconds = 123.0;
  b.reduce_seconds = 4.0;
  EXPECT_TRUE(CompareStatsIgnoringWallTimes(a, b).empty());
  b.shuffle_bytes = 11;
  EXPECT_FALSE(CompareStatsIgnoringWallTimes(a, b).empty());
}

// The acceptance drill: enable the seeded defect (σ^βγ admits exactly the
// wrong groups for unbound patterns), and require the harness to catch it
// and shrink the evidence to a tiny repro.
TEST(InjectedBugTest, FlippedBetaGroupFilterIsCaughtAndShrunk) {
  BetaFlipGuard guard(true);
  FuzzOptions options;
  options.seed = 1;
  options.cases = 50;
  options.query.min_unbound = 1;  // every case exercises the β filter
  std::ostringstream log;
  FuzzReport report = RunFuzz(options, &log);
  ASSERT_FALSE(report.failures.empty())
      << "the injected defect went undetected:\n"
      << log.str();
  const FuzzFailure& failure = report.failures.front();
  EXPECT_LE(failure.shrunk.triples.size(), 10u)
      << "shrinking must reach a minimal repro";
  EXPECT_GE(failure.shrunk.triples.size(), 1u);
  EXPECT_FALSE(failure.outcome.violations.empty());
  // The repro is a complete pasteable test body.
  EXPECT_NE(failure.repro.find("TEST(FuzzRepro,"), std::string::npos);
  EXPECT_NE(failure.repro.find("GraphPatternQuery::Create"),
            std::string::npos);
  EXPECT_NE(failure.repro.find("EXPECT_TRUE(exec->answers == expected)"),
            std::string::npos);
}

TEST(InjectedBugTest, HookRestoredCasesCleanAgain) {
  // After the guard in the previous test (and ours here) releases, the
  // corpus prefix must be clean — the hook must not leak across tests.
  ASSERT_FALSE(BetaGroupFilterFlippedForTesting());
  FuzzOptions options;
  options.seed = 1;
  for (uint64_t i = 0; i < 5; ++i) {
    FuzzCase fuzz_case = MakeCase(options, i);
    CaseOutcome outcome = RunCase(fuzz_case, options.diff);
    EXPECT_TRUE(outcome.ok()) << fuzz_case.name;
  }
}

TEST(ShrinkTest, NonFailingCaseIsReturnedUnchanged) {
  FuzzOptions options;
  options.seed = 1;
  FuzzCase fuzz_case = MakeCase(options, 0);
  FuzzCase shrunk = ShrinkCase(fuzz_case, options.diff);
  EXPECT_EQ(shrunk.triples, fuzz_case.triples);
  EXPECT_EQ(shrunk.patterns, fuzz_case.patterns);
}

}  // namespace
}  // namespace fuzz
}  // namespace rdfmr
