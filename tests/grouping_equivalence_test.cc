// Answer equivalence for the Fig. 3 plan groupings: the Sel-SJ-first
// folding and the SJ-per-cycle plan must produce exactly the oracle's
// solutions for the case-study queries (the main equivalence suite only
// exercises the default grouping).

#include <gtest/gtest.h>

#include "query/matcher.h"
#include "tests/test_util.h"

namespace rdfmr {
namespace {

class GroupingEquivalenceTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(GroupingEquivalenceTest, SelSjFirstMatchesOracle) {
  auto entry = GetTestbedEntry(GetParam());
  ASSERT_TRUE(entry.ok());
  auto query = GetTestbedQuery(GetParam());
  ASSERT_TRUE(query.ok());
  std::vector<Triple> triples = testing_util::SmallDataset(entry->dataset);
  SolutionSet oracle = EvaluateQueryInMemory(**query, triples);
  ASSERT_FALSE(oracle.empty());

  auto dfs = testing_util::MakeDfsWithBase(triples);
  ASSERT_NE(dfs, nullptr);
  for (RelationalGrouping grouping :
       {RelationalGrouping::kStarPerCycle,
        RelationalGrouping::kSelSJFirst}) {
    EngineOptions options;
    options.kind = EngineKind::kHive;
    options.grouping = grouping;
    auto exec = RunQuery(dfs.get(), "base", *query, options);
    ASSERT_TRUE(exec.ok()) << exec.status().ToString();
    ASSERT_TRUE(exec->stats.ok()) << exec->stats.status.ToString();
    EXPECT_TRUE(exec->answers == oracle)
        << GetParam() << " under grouping "
        << (grouping == RelationalGrouping::kSelSJFirst ? "Sel-SJ-first"
                                                        : "SJ-per-cycle");
  }
}

std::string IdName(const ::testing::TestParamInfo<std::string>& info) {
  return info.param;
}

INSTANTIATE_TEST_SUITE_P(Fig3, GroupingEquivalenceTest,
                         ::testing::Values("Q1a", "Q1b", "Q2a", "Q2b",
                                           "Q3a", "Q3b"),
                         IdName);

}  // namespace
}  // namespace rdfmr
