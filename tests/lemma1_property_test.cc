// Randomized end-to-end content-equivalence (Lemma 1): for random RDF
// graphs and random unbound-property queries, the relational star-join
// interpretation and the NTGA interpretation — executed as real MapReduce
// workflows — must produce exactly the same solution sets, equal to the
// in-memory oracle.

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/strings.h"
#include "query/matcher.h"
#include "tests/test_util.h"

namespace rdfmr {
namespace {

using testing_util::AllEngineKinds;
using testing_util::MakeDfsWithBase;

// Random graph over a small vocabulary so joins actually connect.
std::vector<Triple> RandomGraph(Rng* rng, size_t num_subjects,
                                size_t triples_per_subject) {
  std::vector<Triple> triples;
  for (size_t s = 0; s < num_subjects; ++s) {
    std::string subject =
        StringFormat("n%llu", static_cast<unsigned long long>(s));
    size_t n = 1 + rng->Uniform(triples_per_subject);
    for (size_t i = 0; i < n; ++i) {
      std::string property =
          StringFormat("p%llu", static_cast<unsigned long long>(
                                    rng->Uniform(6)));
      // Half the objects are node references (joinable), half literals.
      std::string object =
          rng->Chance(0.5)
              ? StringFormat("n%llu", static_cast<unsigned long long>(
                                          rng->Uniform(num_subjects)))
              : StringFormat("lit_%llu", static_cast<unsigned long long>(
                                             rng->Uniform(8)));
      triples.emplace_back(subject, property, object);
    }
  }
  std::sort(triples.begin(), triples.end());
  triples.erase(std::unique(triples.begin(), triples.end()), triples.end());
  return triples;
}

// Random two-star query: star1 {bound, bound?, unbound} joined to star2
// {bound, unbound?} either through the unbound object or a bound object.
Result<GraphPatternQuery> RandomQuery(Rng* rng) {
  std::vector<TriplePattern> patterns;
  patterns.push_back(TriplePattern::Bound(
      NodePattern::Var("a"),
      StringFormat("p%llu",
                   static_cast<unsigned long long>(rng->Uniform(6))),
      NodePattern::Var("v1")));
  bool join_on_unbound = rng->Chance(0.5);
  std::string join_filter = rng->Chance(0.4) ? "n" : "";
  if (join_on_unbound) {
    patterns.push_back(TriplePattern::Unbound(
        NodePattern::Var("a"), "up", NodePattern::Var("j", join_filter)));
  } else {
    patterns.push_back(TriplePattern::Bound(
        NodePattern::Var("a"),
        StringFormat("p%llu",
                     static_cast<unsigned long long>(rng->Uniform(6))),
        NodePattern::Var("j")));
    patterns.push_back(TriplePattern::Unbound(
        NodePattern::Var("a"), "up", NodePattern::Var("w")));
  }
  patterns.push_back(TriplePattern::Bound(
      NodePattern::Var("j"),
      StringFormat("p%llu",
                   static_cast<unsigned long long>(rng->Uniform(6))),
      NodePattern::Var("v2")));
  if (rng->Chance(0.5)) {
    patterns.push_back(TriplePattern::Unbound(
        NodePattern::Var("j"), "up2",
        NodePattern::Var("v3", rng->Chance(0.5) ? "lit" : "")));
  }
  return GraphPatternQuery::Create("random", std::move(patterns));
}

class Lemma1Test : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Lemma1Test, AllEnginesAgreeWithOracleOnRandomInputs) {
  Rng rng(GetParam() * 7919 + 13);
  std::vector<Triple> triples = RandomGraph(&rng, 30, 6);
  auto query = RandomQuery(&rng);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  auto shared =
      std::make_shared<const GraphPatternQuery>(query.MoveValueUnsafe());

  SolutionSet oracle = EvaluateQueryInMemory(*shared, triples);

  auto dfs = MakeDfsWithBase(triples);
  ASSERT_NE(dfs, nullptr);
  for (EngineKind kind : AllEngineKinds()) {
    EngineOptions options;
    options.kind = kind;
    options.phi_partitions = 1 + static_cast<uint32_t>(rng.Uniform(32));
    auto exec = RunQuery(dfs.get(), "base", shared, options);
    ASSERT_TRUE(exec.ok()) << exec.status().ToString();
    ASSERT_TRUE(exec->stats.ok()) << exec->stats.status.ToString();
    EXPECT_TRUE(exec->answers == oracle)
        << "seed " << GetParam() << ", engine " << EngineKindToString(kind)
        << ": got " << exec->answers.size() << " solutions, oracle has "
        << oracle.size();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma1Test,
                         ::testing::Range<uint64_t>(0, 25));

}  // namespace
}  // namespace rdfmr
