// Unit and integration tests for the MapReduce engine: map/shuffle/reduce
// semantics, multi-input jobs, map-only jobs, MultipleOutputs demuxing,
// counters, byte conservation, workflow sequencing and failure behaviour,
// and the cost model.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/strings.h"
#include "dfs/sim_dfs.h"
#include "mapreduce/cost_model.h"
#include "mapreduce/job_runner.h"
#include "mapreduce/workflow.h"

namespace rdfmr {
namespace {

ClusterConfig TestCluster(uint64_t disk_per_node = 4 << 20) {
  ClusterConfig config;
  config.num_nodes = 4;
  config.disk_per_node = disk_per_node;
  config.replication = 1;
  config.block_size = 4096;
  config.num_reducers = 3;
  return config;
}

// Tokenizing word-count mapper and summing reducer.
MapFn WordMapper() {
  return [](const std::string& record, const MapEmit& emit, Counters*) {
    for (const std::string& word : Split(record, ' ')) {
      if (!word.empty()) emit(word, "1");
    }
  };
}

ReduceFn CountReducer() {
  return [](const std::string& key, const std::vector<std::string>& values,
            const RecordEmit& emit, Counters*) {
    emit(key + "=" + std::to_string(values.size()));
  };
}

TEST(JobRunnerTest, WordCountEndToEnd) {
  SimDfs dfs(TestCluster());
  ASSERT_TRUE(
      dfs.WriteFile("in", {"a b a", "b c", "a"}).ok());
  JobSpec job;
  job.name = "wordcount";
  job.inputs.push_back(MapInput{"in", WordMapper()});
  job.reduce = CountReducer();
  job.output_path = "out";
  auto metrics = RunJob(&dfs, job);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();

  auto lines = dfs.ReadFile("out");
  ASSERT_TRUE(lines.ok());
  std::vector<std::string> sorted = *lines;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<std::string>{"a=3", "b=2", "c=1"}));

  EXPECT_EQ(metrics->input_records, 3u);
  EXPECT_EQ(metrics->map_output_records, 6u);
  EXPECT_EQ(metrics->reduce_input_groups, 3u);
  EXPECT_EQ(metrics->output_records, 3u);
}

TEST(JobRunnerTest, ReducerSeesValuesInEmissionOrder) {
  SimDfs dfs(TestCluster());
  ASSERT_TRUE(dfs.WriteFile("in", {"k v1", "k v2", "k v3"}).ok());
  JobSpec job;
  job.name = "order";
  job.inputs.push_back(MapInput{
      "in", [](const std::string& record, const MapEmit& emit, Counters*) {
        auto parts = Split(record, ' ');
        emit(parts[0], parts[1]);
      }});
  job.reduce = [](const std::string& key,
                  const std::vector<std::string>& values,
                  const RecordEmit& emit, Counters*) {
    emit(key + ":" + Join(values, ','));
  };
  job.output_path = "out";
  auto metrics = RunJob(&dfs, job);
  ASSERT_TRUE(metrics.ok());
  auto lines = dfs.ReadFile("out");
  ASSERT_TRUE(lines.ok());
  EXPECT_EQ((*lines)[0], "k:v1,v2,v3")
      << "ties on the key keep map emission order (stable secondary sort)";
}

TEST(JobRunnerTest, MultipleInputsWithDistinctMappers) {
  SimDfs dfs(TestCluster());
  ASSERT_TRUE(dfs.WriteFile("left", {"x"}).ok());
  ASSERT_TRUE(dfs.WriteFile("right", {"x"}).ok());
  JobSpec job;
  job.name = "tagging";
  job.inputs.push_back(MapInput{
      "left", [](const std::string& r, const MapEmit& emit, Counters*) {
        emit(r, "L");
      }});
  job.inputs.push_back(MapInput{
      "right", [](const std::string& r, const MapEmit& emit, Counters*) {
        emit(r, "R");
      }});
  job.reduce = [](const std::string& key,
                  const std::vector<std::string>& values,
                  const RecordEmit& emit, Counters*) {
    std::vector<std::string> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    emit(key + ":" + Join(sorted, '+'));
  };
  job.output_path = "out";
  auto metrics = RunJob(&dfs, job);
  ASSERT_TRUE(metrics.ok());
  auto lines = dfs.ReadFile("out");
  ASSERT_TRUE(lines.ok());
  EXPECT_EQ((*lines)[0], "x:L+R");
}

TEST(JobRunnerTest, MapOnlyJobWritesValuesDirectly) {
  SimDfs dfs(TestCluster());
  ASSERT_TRUE(dfs.WriteFile("in", {"keep", "drop", "keep2"}).ok());
  JobSpec job;
  job.name = "filter";
  job.inputs.push_back(MapInput{
      "in", [](const std::string& r, const MapEmit& emit, Counters*) {
        if (StartsWith(r, "keep")) emit("", r);
      }});
  job.reduce = nullptr;  // map-only
  job.output_path = "out";
  auto metrics = RunJob(&dfs, job);
  ASSERT_TRUE(metrics.ok());
  auto lines = dfs.ReadFile("out");
  ASSERT_TRUE(lines.ok());
  EXPECT_EQ(*lines, (std::vector<std::string>{"keep", "keep2"}));
  EXPECT_EQ(metrics->reduce_input_groups, 0u);
}

TEST(JobRunnerTest, DemuxRoutesRecordsAndEnsuresOutputs) {
  SimDfs dfs(TestCluster());
  ASSERT_TRUE(dfs.WriteFile("in", {"a1", "b2", "a3"}).ok());
  JobSpec job;
  job.name = "demux";
  job.inputs.push_back(MapInput{
      "in", [](const std::string& r, const MapEmit& emit, Counters*) {
        emit("", r);
      }});
  job.output_path = "out-";
  job.demux = [](const std::string& record) {
    return record.substr(0, 1);
  };
  job.ensure_outputs = {"out-a", "out-b", "out-c"};
  auto metrics = RunJob(&dfs, job);
  ASSERT_TRUE(metrics.ok());
  auto a = dfs.ReadFile("out-a");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, (std::vector<std::string>{"a1", "a3"}));
  auto b = dfs.ReadFile("out-b");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, (std::vector<std::string>{"b2"}));
  auto c = dfs.ReadFile("out-c");
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->empty()) << "ensure_outputs creates empty files";
}

TEST(JobRunnerTest, MapOnlyJobMetersDirectOutputNotShuffle) {
  SimDfs dfs(TestCluster());
  ASSERT_TRUE(dfs.WriteFile("in", {"alpha", "beta", "gamma"}).ok());
  JobSpec job;
  job.name = "identity";
  job.inputs.push_back(MapInput{
      "in", [](const std::string& r, const MapEmit& emit, Counters*) {
        emit("", r);
      }});
  job.reduce = nullptr;  // map-only
  job.output_path = "out";
  auto metrics = RunJob(&dfs, job);
  ASSERT_TRUE(metrics.ok());
  // Emissions of a map-only job never enter a shuffle: they are metered
  // as direct output (value + newline, exactly the bytes written) and the
  // shuffle-side meters stay at zero.
  EXPECT_EQ(metrics->map_output_records, 0u);
  EXPECT_EQ(metrics->map_output_bytes, 0u);
  EXPECT_EQ(metrics->map_direct_output_records, 3u);
  EXPECT_EQ(metrics->map_direct_output_bytes, metrics->output_bytes);
  EXPECT_EQ(metrics->map_direct_output_bytes, *dfs.FileSize("out"));
  EXPECT_EQ(metrics->reduce_input_groups, 0u);
}

TEST(JobRunnerTest, ReduceJobMetersShuffleNotDirectOutput) {
  SimDfs dfs(TestCluster());
  ASSERT_TRUE(dfs.WriteFile("in", {"a b", "b"}).ok());
  JobSpec job;
  job.name = "counting";
  job.inputs.push_back(MapInput{"in", WordMapper()});
  job.reduce = CountReducer();
  job.output_path = "out";
  auto metrics = RunJob(&dfs, job);
  ASSERT_TRUE(metrics.ok());
  EXPECT_GT(metrics->map_output_records, 0u);
  EXPECT_GT(metrics->map_output_bytes, 0u);
  EXPECT_EQ(metrics->map_direct_output_records, 0u);
  EXPECT_EQ(metrics->map_direct_output_bytes, 0u);
}

TEST(CombinerTest, ShuffleMeteredPostCombinePerBlockMapTask) {
  SimDfs dfs(TestCluster());
  // A file wide enough to span several 4KB blocks: every line maps to the
  // same key, and the dedup combiner collapses each map task's emissions
  // to one value, so the post-combine shuffle volume counts exactly one
  // record per block-sized map task.
  std::vector<std::string> lines(
      300, "padding padding padding padding padding padding padding");
  ASSERT_TRUE(dfs.WriteFile("in", lines).ok());
  auto blocks = dfs.BlockCount("in");
  ASSERT_TRUE(blocks.ok());
  ASSERT_GT(*blocks, 1u) << "input must span multiple blocks";
  JobSpec job;
  job.name = "per-block-combine";
  job.inputs.push_back(MapInput{
      "in", [](const std::string&, const MapEmit& emit, Counters*) {
        emit("k", "1");
      }});
  job.combine = [](const std::string&,
                   const std::vector<std::string>& values, Counters*) {
    std::set<std::string> distinct(values.begin(), values.end());
    return std::vector<std::string>(distinct.begin(), distinct.end());
  };
  job.reduce = CountReducer();
  job.output_path = "out";
  auto metrics = RunJob(&dfs, job);
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->map_output_records, *blocks)
      << "one combined record per block-sized map task enters the shuffle";
  EXPECT_EQ(metrics->map_output_bytes,
            static_cast<uint64_t>(*blocks) * (1 + 1 + 2))
      << "shuffle bytes are metered post-combine (key 'k' + value '1' + 2)";
  EXPECT_EQ(metrics->counters.at("combine_input_records"), lines.size());
}

TEST(JobRunnerTest, EnsuredEmptyOutputsAreReadableDownstream) {
  SimDfs dfs(TestCluster());
  ASSERT_TRUE(dfs.WriteFile("in", {"a1", "a2"}).ok());
  JobSpec producer;
  producer.name = "demux-producer";
  producer.inputs.push_back(MapInput{
      "in", [](const std::string& r, const MapEmit& emit, Counters*) {
        emit("", r);
      }});
  producer.output_path = "part-";
  producer.demux = [](const std::string& record) {
    return record.substr(0, 1);
  };
  // "b" receives no record; ensure_outputs must still create it so the
  // consumer below finds every input it was planned against.
  producer.ensure_outputs = {"part-a", "part-b"};
  ASSERT_TRUE(RunJob(&dfs, producer).ok());
  ASSERT_TRUE(dfs.Exists("part-b"));
  EXPECT_EQ(*dfs.FileSize("part-b"), 0u);

  JobSpec consumer;
  consumer.name = "demux-consumer";
  for (const char* path : {"part-a", "part-b"}) {
    consumer.inputs.push_back(MapInput{
        path, [](const std::string& r, const MapEmit& emit, Counters*) {
          emit(r, "1");
        }});
  }
  consumer.reduce = CountReducer();
  consumer.output_path = "out";
  auto metrics = RunJob(&dfs, consumer);
  ASSERT_TRUE(metrics.ok())
      << "a downstream job must be able to read an ensured empty output: "
      << metrics.status().ToString();
  EXPECT_EQ(metrics->input_records, 2u)
      << "the empty input contributes no records";
  auto lines = dfs.ReadFile("out");
  ASSERT_TRUE(lines.ok());
  std::vector<std::string> sorted = *lines;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<std::string>{"a1=1", "a2=1"}));
}

TEST(JobRunnerTest, CountersFlowToMetrics) {
  SimDfs dfs(TestCluster());
  ASSERT_TRUE(dfs.WriteFile("in", {"r1", "r2"}).ok());
  JobSpec job;
  job.name = "counting";
  job.inputs.push_back(MapInput{
      "in", [](const std::string&, const MapEmit& emit, Counters* c) {
        (*c)["map_calls"] += 1;
        emit("k", "v");
      }});
  job.reduce = [](const std::string&, const std::vector<std::string>& v,
                  const RecordEmit& emit, Counters* c) {
    (*c)["reduce_values"] += v.size();
    emit("done");
  };
  job.output_path = "out";
  auto metrics = RunJob(&dfs, job);
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->counters.at("map_calls"), 2u);
  EXPECT_EQ(metrics->counters.at("reduce_values"), 2u);
}

TEST(JobRunnerTest, ByteAccountingIsConsistent) {
  SimDfs dfs(TestCluster());
  ASSERT_TRUE(dfs.WriteFile("in", {"hello world", "foo"}).ok());
  JobSpec job;
  job.name = "bytes";
  job.inputs.push_back(MapInput{"in", WordMapper()});
  job.reduce = CountReducer();
  job.output_path = "out";
  auto metrics = RunJob(&dfs, job);
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->input_bytes, *dfs.FileSize("in"));
  EXPECT_EQ(metrics->output_bytes, *dfs.FileSize("out"));
  // Shuffle bytes = sum over emissions of key+value+2.
  // words: hello(5), world(5), foo(3); values "1"(1 each).
  EXPECT_EQ(metrics->map_output_bytes, (5 + 1 + 2) + (5 + 1 + 2) +
                                           (3 + 1 + 2));
}

TEST(JobRunnerTest, MissingInputFails) {
  SimDfs dfs(TestCluster());
  JobSpec job;
  job.name = "broken";
  job.inputs.push_back(MapInput{"missing", WordMapper()});
  job.reduce = CountReducer();
  job.output_path = "out";
  auto metrics = RunJob(&dfs, job);
  EXPECT_TRUE(metrics.status().IsNotFound());
}

TEST(JobRunnerTest, InvalidSpecsRejected) {
  SimDfs dfs(TestCluster());
  JobSpec no_inputs;
  no_inputs.name = "empty";
  no_inputs.output_path = "out";
  EXPECT_TRUE(RunJob(&dfs, no_inputs).status().IsInvalidArgument());

  JobSpec no_output;
  no_output.name = "noout";
  no_output.inputs.push_back(MapInput{"in", WordMapper()});
  EXPECT_TRUE(RunJob(&dfs, no_output).status().IsInvalidArgument());
}

TEST(JobRunnerTest, OutputFailureSurfacesOutOfSpace) {
  SimDfs dfs(TestCluster(/*disk_per_node=*/4096));  // 16KB total
  std::vector<std::string> big(400, "some fairly long input line here");
  ASSERT_TRUE(dfs.WriteFile("in", big).ok());
  JobSpec job;
  job.name = "explode";
  job.inputs.push_back(MapInput{
      "in", [](const std::string& r, const MapEmit& emit, Counters*) {
        emit(r, r + r);  // amplify
      }});
  job.reduce = [](const std::string& key,
                  const std::vector<std::string>& values,
                  const RecordEmit& emit, Counters*) {
    for (const std::string& v : values) emit(key + v);
  };
  job.output_path = "out";
  auto metrics = RunJob(&dfs, job);
  EXPECT_TRUE(metrics.status().IsOutOfSpace()) << metrics.status().ToString();
}

// ---- Combiner ----------------------------------------------------------------

TEST(CombinerTest, DeduplicatingCombinerShrinksShuffleNotAnswers) {
  SimDfs dfs(TestCluster());
  // Many repeated words per input task.
  ASSERT_TRUE(dfs.WriteFile("in", {"a a a a b", "b b a a"}).ok());
  auto make_job = [&](bool with_combiner, const std::string& out) {
    JobSpec job;
    job.name = "distinct-wordcount";
    job.inputs.push_back(MapInput{"in", WordMapper()});
    if (with_combiner) {
      job.combine = [](const std::string&,
                       const std::vector<std::string>& values, Counters*) {
        std::set<std::string> distinct(values.begin(), values.end());
        return std::vector<std::string>(distinct.begin(), distinct.end());
      };
    }
    // Reduce counts DISTINCT values, so combining is semantics-preserving.
    job.reduce = [](const std::string& key,
                    const std::vector<std::string>& values,
                    const RecordEmit& emit, Counters*) {
      std::set<std::string> distinct(values.begin(), values.end());
      emit(key + "=" + std::to_string(distinct.size()));
    };
    job.output_path = out;
    return job;
  };
  auto plain = RunJob(&dfs, make_job(false, "out-plain"));
  auto combined = RunJob(&dfs, make_job(true, "out-combined"));
  ASSERT_TRUE(plain.ok() && combined.ok());
  auto a = dfs.ReadFile("out-plain");
  auto b = dfs.ReadFile("out-combined");
  ASSERT_TRUE(a.ok() && b.ok());
  std::vector<std::string> sa = *a, sb = *b;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  EXPECT_EQ(sa, sb) << "the combiner must not change the answers";
  EXPECT_LT(combined->map_output_records, plain->map_output_records);
  EXPECT_LT(combined->map_output_bytes, plain->map_output_bytes);
  EXPECT_EQ(combined->counters.at("combine_input_records"),
            plain->map_output_records);
}

TEST(CombinerTest, AppliedPerInputTask) {
  // Two inputs with the same key: the combiner runs per task, so the
  // reducer still sees one value per task (cross-task dedup is its job).
  SimDfs dfs(TestCluster());
  ASSERT_TRUE(dfs.WriteFile("in1", {"k k"}).ok());
  ASSERT_TRUE(dfs.WriteFile("in2", {"k"}).ok());
  JobSpec job;
  job.name = "per-task";
  for (const char* path : {"in1", "in2"}) {
    job.inputs.push_back(MapInput{path, WordMapper()});
  }
  job.combine = [](const std::string&,
                   const std::vector<std::string>& values, Counters*) {
    std::set<std::string> distinct(values.begin(), values.end());
    return std::vector<std::string>(distinct.begin(), distinct.end());
  };
  job.reduce = [](const std::string& key,
                  const std::vector<std::string>& values,
                  const RecordEmit& emit, Counters*) {
    emit(key + ":" + std::to_string(values.size()));
  };
  job.output_path = "out";
  auto metrics = RunJob(&dfs, job);
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->map_output_records, 2u)
      << "one combined value per task reaches the shuffle";
  auto lines = dfs.ReadFile("out");
  ASSERT_TRUE(lines.ok());
  EXPECT_EQ((*lines)[0], "k:2");
}

// ---- Workflow --------------------------------------------------------------

WorkflowSpec TwoStageWorkflow() {
  WorkflowSpec spec;
  spec.name = "two-stage";
  JobSpec stage1;
  stage1.name = "tokenize";
  stage1.inputs.push_back(MapInput{
      "in", [](const std::string& r, const MapEmit& emit, Counters*) {
        for (const std::string& w : Split(r, ' ')) {
          if (!w.empty()) emit(w, "1");
        }
      }});
  stage1.reduce = CountReducer();
  stage1.output_path = "counts";
  spec.jobs.push_back(stage1);

  JobSpec stage2;
  stage2.name = "filter-popular";
  stage2.inputs.push_back(MapInput{
      "counts", [](const std::string& r, const MapEmit& emit, Counters*) {
        auto parts = Split(r, '=');
        if (std::stoi(parts[1]) >= 2) emit("", r);
      }});
  stage2.reduce = nullptr;
  stage2.output_path = "popular";
  spec.jobs.push_back(stage2);

  spec.intermediate_paths = {"counts"};
  spec.final_output_path = "popular";
  return spec;
}

TEST(WorkflowTest, RunsJobsInOrderAndCleansIntermediates) {
  SimDfs dfs(TestCluster());
  ASSERT_TRUE(dfs.WriteFile("in", {"a b a", "b c b"}).ok());
  WorkflowResult result = RunWorkflow(&dfs, TwoStageWorkflow());
  ASSERT_TRUE(result.ok()) << result.status.ToString();
  EXPECT_EQ(result.num_mr_cycles(), 2u);
  EXPECT_FALSE(dfs.Exists("counts")) << "intermediate must be cleaned";
  auto lines = dfs.ReadFile("popular");
  ASSERT_TRUE(lines.ok());
  std::vector<std::string> sorted = *lines;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<std::string>{"a=2", "b=3"}));
  EXPECT_GT(result.modeled_seconds, 0.0);
  EXPECT_GE(result.peak_dfs_used_bytes, *dfs.FileSize("popular"));
}

TEST(WorkflowTest, TotalsAccumulateAcrossJobs) {
  SimDfs dfs(TestCluster());
  ASSERT_TRUE(dfs.WriteFile("in", {"a b a", "b c b"}).ok());
  WorkflowResult result = RunWorkflow(&dfs, TwoStageWorkflow());
  ASSERT_TRUE(result.ok());
  uint64_t input_sum = 0;
  for (const JobMetrics& m : result.job_metrics) {
    input_sum += m.input_bytes;
  }
  EXPECT_EQ(result.totals.input_bytes, input_sum);
}

TEST(WorkflowTest, FailureStopsAndReportsJobIndex) {
  SimDfs dfs(TestCluster());
  ASSERT_TRUE(dfs.WriteFile("in", {"a"}).ok());
  WorkflowSpec spec = TwoStageWorkflow();
  spec.jobs[1].inputs[0].path = "wrong-path";
  WorkflowResult result = RunWorkflow(&dfs, spec);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.failed_job_index, 1);
  EXPECT_EQ(result.job_metrics.size(), 1u);
  EXPECT_FALSE(dfs.Exists("counts"))
      << "cleanup also runs after a failure";
}

TEST(WorkflowTest, FailedFinalOutputRemoved) {
  SimDfs dfs(TestCluster());
  ASSERT_TRUE(dfs.WriteFile("in", {"a b"}).ok());
  WorkflowSpec spec = TwoStageWorkflow();
  // Sabotage the second job so it fails after the first wrote its output.
  spec.jobs[1].inputs[0].path = "missing";
  RunWorkflow(&dfs, spec);
  EXPECT_FALSE(dfs.Exists("popular"));
}

TEST(WorkflowTest, DescribeRendersJobsInOrder) {
  WorkflowSpec spec = TwoStageWorkflow();
  spec.jobs[1].combine = [](const std::string&,
                            const std::vector<std::string>& v, Counters*) {
    return v;
  };
  std::string rendered = DescribeWorkflow(spec);
  EXPECT_NE(rendered.find("two-stage"), std::string::npos);
  EXPECT_NE(rendered.find("MR1 tokenize: in -> counts"), std::string::npos);
  EXPECT_NE(rendered.find("MR2 filter-popular"), std::string::npos);
  EXPECT_NE(rendered.find("[map-only]"), std::string::npos);
  EXPECT_NE(rendered.find("[combiner]"), std::string::npos);
  EXPECT_NE(rendered.find("final: popular"), std::string::npos);
  EXPECT_LT(rendered.find("MR1"), rendered.find("MR2"));
}

// ---- Cost model -------------------------------------------------------------

TEST(CostModelTest, MonotonicInEachByteComponent) {
  ClusterConfig cluster = TestCluster();
  CostModelConfig cost;
  JobMetrics base;
  base.input_bytes = 1 << 20;
  base.map_output_bytes = 1 << 20;
  base.map_output_records = 1000;
  base.output_bytes_replicated = 1 << 20;
  double t0 = ModelJobSeconds(base, cluster, cost);

  JobMetrics more_read = base;
  more_read.input_bytes *= 4;
  EXPECT_GT(ModelJobSeconds(more_read, cluster, cost), t0);

  JobMetrics more_shuffle = base;
  more_shuffle.map_output_bytes *= 4;
  EXPECT_GT(ModelJobSeconds(more_shuffle, cluster, cost), t0);

  JobMetrics more_write = base;
  more_write.output_bytes_replicated *= 4;
  EXPECT_GT(ModelJobSeconds(more_write, cluster, cost), t0);
}

TEST(CostModelTest, MoreNodesGoFaster) {
  CostModelConfig cost;
  JobMetrics m;
  m.input_bytes = 64 << 20;
  m.map_output_bytes = 64 << 20;
  m.map_output_records = 100000;
  m.output_bytes_replicated = 64 << 20;
  ClusterConfig small = TestCluster();
  small.num_nodes = 4;
  ClusterConfig big = TestCluster();
  big.num_nodes = 16;
  EXPECT_GT(ModelJobSeconds(m, small, cost),
            ModelJobSeconds(m, big, cost));
}

TEST(CostModelTest, StartupIsPerJob) {
  ClusterConfig cluster = TestCluster();
  CostModelConfig cost;
  JobMetrics empty;
  double one = ModelJobSeconds(empty, cluster, cost);
  EXPECT_DOUBLE_EQ(one, cost.job_startup_seconds);
  EXPECT_DOUBLE_EQ(ModelWorkflowSeconds({empty, empty}, cluster, cost),
                   2 * cost.job_startup_seconds);
}

}  // namespace
}  // namespace rdfmr
