// Unit tests for the reference matcher: single-pattern matching, star
// enumeration (including the paper's "a triple plays multiple roles" case),
// and whole-query in-memory evaluation used as the engines' oracle.

#include <gtest/gtest.h>

#include "query/matcher.h"

namespace rdfmr {
namespace {

TriplePattern BoundTp(const std::string& s, const std::string& p,
                      const std::string& o_var) {
  return TriplePattern::Bound(NodePattern::Var(s), p, NodePattern::Var(o_var));
}

TEST(MatchTriplePatternTest, BoundPropertyMatch) {
  Triple t("gene9", "xGO", "go1");
  auto m = MatchTriplePattern(BoundTp("g", "xGO", "o"), t);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m->Get("g"), "gene9");
  EXPECT_EQ(*m->Get("o"), "go1");
  EXPECT_FALSE(
      MatchTriplePattern(BoundTp("g", "label", "o"), t).has_value());
}

TEST(MatchTriplePatternTest, UnboundPropertyBindsPropertyVariable) {
  Triple t("gene9", "xGO", "go1");
  TriplePattern tp = TriplePattern::Unbound(NodePattern::Var("g"), "p",
                                            NodePattern::Var("o"));
  auto m = MatchTriplePattern(tp, t);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m->Get("p"), "xGO");
}

TEST(MatchTriplePatternTest, ConstantObjectAndSubject) {
  Triple t("gene9", "type", "protein");
  TriplePattern tp = TriplePattern::Bound(NodePattern::Var("g"), "type",
                                          NodePattern::Const("protein"));
  EXPECT_TRUE(MatchTriplePattern(tp, t).has_value());
  tp.object = NodePattern::Const("pseudo");
  EXPECT_FALSE(MatchTriplePattern(tp, t).has_value());

  TriplePattern const_subject = TriplePattern::Bound(
      NodePattern::Const("gene9"), "type", NodePattern::Var("t"));
  EXPECT_TRUE(MatchTriplePattern(const_subject, t).has_value());
  const_subject.subject = NodePattern::Const("gene10");
  EXPECT_FALSE(MatchTriplePattern(const_subject, t).has_value());
}

TEST(MatchTriplePatternTest, ObjectContainsFilter) {
  Triple t("g", "xGO", "go_terms_17");
  TriplePattern tp = TriplePattern::Unbound(
      NodePattern::Var("g"), "p", NodePattern::Var("o", "go_"));
  EXPECT_TRUE(MatchTriplePattern(tp, t).has_value());
  Triple miss("g", "xRef", "ref_17");
  EXPECT_FALSE(MatchTriplePattern(tp, miss).has_value());
}

TEST(MatchTriplePatternTest, SharedVariableAcrossPositions) {
  // ?s <selfLoop> ?s must only match reflexive triples.
  TriplePattern tp = TriplePattern::Bound(NodePattern::Var("s"), "selfLoop",
                                          NodePattern::Var("s"));
  EXPECT_TRUE(
      MatchTriplePattern(tp, Triple("a", "selfLoop", "a")).has_value());
  EXPECT_FALSE(
      MatchTriplePattern(tp, Triple("a", "selfLoop", "b")).has_value());
}

// ---- MatchStar ---------------------------------------------------------------

StarPattern UnboundStar() {
  StarPattern star;
  star.subject_var = "g";
  star.patterns.push_back(BoundTp("g", "label", "l"));
  star.patterns.push_back(TriplePattern::Unbound(
      NodePattern::Var("g"), "up", NodePattern::Var("x")));
  return star;
}

TEST(MatchStarTest, MultiValuedPropertyProducesAllCombinations) {
  StarPattern star;
  star.subject_var = "g";
  star.patterns.push_back(BoundTp("g", "label", "l"));
  star.patterns.push_back(BoundTp("g", "xGO", "go"));
  std::vector<Triple> triples = {
      {"gene9", "label", "retinoid"},
      {"gene9", "xGO", "go1"},
      {"gene9", "xGO", "go9"},
  };
  std::vector<StarMatch> matches = MatchStarDetailed(star, triples);
  EXPECT_EQ(matches.size(), 2u) << "one per xGO value";
  for (const StarMatch& m : matches) {
    EXPECT_EQ(m.matched.size(), 2u);
    EXPECT_EQ(*m.solution.Get("l"), "retinoid");
  }
}

TEST(MatchStarTest, TriplePlaysBoundAndUnboundRoles) {
  // The label triple must match BOTH the bound label pattern and the
  // unbound pattern — Section 3's subtlety.
  std::vector<Triple> triples = {
      {"gene9", "label", "retinoid"},
      {"gene9", "xGO", "go1"},
  };
  std::vector<Solution> solutions = MatchStar(UnboundStar(), triples);
  ASSERT_EQ(solutions.size(), 2u);
  std::set<std::string> up_bindings;
  for (const Solution& s : solutions) {
    up_bindings.insert(*s.Get("up"));
  }
  EXPECT_EQ(up_bindings, (std::set<std::string>{"label", "xGO"}));
}

TEST(MatchStarTest, MissingBoundPropertyYieldsNothing) {
  std::vector<Triple> triples = {{"gene9", "xGO", "go1"}};
  EXPECT_TRUE(MatchStar(UnboundStar(), triples).empty());
}

TEST(MatchStarTest, SharedObjectVariableEnforced) {
  // Both patterns bind ?v: only subjects where the two properties share a
  // value match.
  StarPattern star;
  star.subject_var = "s";
  star.patterns.push_back(BoundTp("s", "p1", "v"));
  star.patterns.push_back(BoundTp("s", "p2", "v"));
  std::vector<Triple> ok_triples = {
      {"s1", "p1", "shared"}, {"s1", "p2", "shared"}, {"s1", "p2", "other"},
  };
  std::vector<Solution> solutions = MatchStar(star, ok_triples);
  ASSERT_EQ(solutions.size(), 1u);
  EXPECT_EQ(*solutions[0].Get("v"), "shared");
}

TEST(MatchStarTest, TwoUnboundPatternsProduceCartesianProduct) {
  StarPattern star;
  star.subject_var = "g";
  star.patterns.push_back(TriplePattern::Unbound(
      NodePattern::Var("g"), "up1", NodePattern::Var("x1")));
  star.patterns.push_back(TriplePattern::Unbound(
      NodePattern::Var("g"), "up2", NodePattern::Var("x2")));
  std::vector<Triple> triples = {
      {"g", "a", "1"}, {"g", "b", "2"}, {"g", "c", "3"},
  };
  EXPECT_EQ(MatchStar(star, triples).size(), 9u);
}

// ---- EvaluateQueryInMemory ---------------------------------------------------

TEST(EvaluateQueryTest, TwoStarJoinHandComputed) {
  std::vector<TriplePattern> patterns = {
      BoundTp("p", "label", "l"),
      BoundTp("o", "product", "p"),
      BoundTp("o", "price", "pr"),
  };
  auto q = GraphPatternQuery::Create("join", std::move(patterns));
  ASSERT_TRUE(q.ok());
  std::vector<Triple> triples = {
      {"prod1", "label", "widget"},
      {"prod2", "label", "gadget"},
      {"offer1", "product", "prod1"},
      {"offer1", "price", "10"},
      {"offer2", "product", "prod1"},
      {"offer2", "price", "20"},
      {"offer3", "product", "missing"},
      {"offer3", "price", "30"},
  };
  SolutionSet result = EvaluateQueryInMemory(*q, triples);
  ASSERT_EQ(result.size(), 2u) << "offers 1 and 2 join to prod1";
  for (const Solution& s : result) {
    EXPECT_EQ(*s.Get("p"), "prod1");
    EXPECT_EQ(*s.Get("l"), "widget");
  }
}

TEST(EvaluateQueryTest, ResidualPredicateEnforced) {
  // Two stars sharing TWO variables: the second shared variable acts as a
  // residual filter on the joined pairs.
  std::vector<TriplePattern> patterns = {
      BoundTp("a", "link", "x"),
      BoundTp("a", "tag", "t"),
      BoundTp("b", "rev", "x"),
      BoundTp("b", "tag", "t"),
  };
  auto q = GraphPatternQuery::Create("residual", std::move(patterns));
  ASSERT_TRUE(q.ok());
  std::vector<Triple> triples = {
      {"a1", "link", "k"}, {"a1", "tag", "red"},
      {"b1", "rev", "k"},  {"b1", "tag", "red"},
      {"b2", "rev", "k"},  {"b2", "tag", "blue"},
  };
  SolutionSet result = EvaluateQueryInMemory(*q, triples);
  ASSERT_EQ(result.size(), 1u) << "b2 disagrees on ?t and must be dropped";
  EXPECT_EQ(*result.begin()->Get("b"), "b1");
}

TEST(EvaluateQueryTest, ObjectObjectJoin) {
  std::vector<TriplePattern> patterns = {
      BoundTp("o", "product", "p"),
      BoundTp("r", "reviewFor", "p"),
  };
  auto q = GraphPatternQuery::Create("oo", std::move(patterns));
  ASSERT_TRUE(q.ok());
  std::vector<Triple> triples = {
      {"offer1", "product", "prod1"},
      {"offer2", "product", "prod2"},
      {"rev1", "reviewFor", "prod1"},
      {"rev2", "reviewFor", "prod1"},
  };
  SolutionSet result = EvaluateQueryInMemory(*q, triples);
  EXPECT_EQ(result.size(), 2u) << "offer1 x {rev1, rev2}";
}

TEST(EvaluateQueryTest, EmptyDataEmptyResult) {
  auto q = GraphPatternQuery::Create(
      "e", {BoundTp("s", "p", "o")});
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(EvaluateQueryInMemory(*q, {}).empty());
}

}  // namespace
}  // namespace rdfmr
