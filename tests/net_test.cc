// Transport-layer tests for src/net: address parsing, the NDJSON frame
// decoder under adversarial splits, and the poll(2) event-loop server —
// pipelined out-of-order completion, ordered mode, write backpressure,
// idle eviction, connection limits, oversize rejection, and shutdown
// draining an in-flight completion from another thread.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "net/address.h"
#include "net/frame.h"
#include "net/net_server.h"
#include "service/client.h"

namespace rdfmr {
namespace net {
namespace {

using service::ServiceClient;

std::string TestSocketPath(const char* tag) {
  return StringFormat("/tmp/rdfmr-net-%s-%d.sock", tag,
                      static_cast<int>(::getpid()));
}

/// Spin-waits (with sleeps) until `predicate` holds or ~2s elapse.
template <typename Pred>
bool WaitFor(Pred predicate) {
  for (int i = 0; i < 2000; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return predicate();
}

// ---- addresses --------------------------------------------------------------

TEST(AddressTest, ParsesEverySpelling) {
  auto unix_addr = Address::Parse("unix:/tmp/x.sock");
  ASSERT_TRUE(unix_addr.ok());
  EXPECT_EQ(unix_addr->kind, AddressKind::kUnix);
  EXPECT_EQ(unix_addr->path, "/tmp/x.sock");
  EXPECT_EQ(unix_addr->ToString(), "unix:/tmp/x.sock");

  auto tcp = Address::Parse("tcp:127.0.0.1:8080");
  ASSERT_TRUE(tcp.ok());
  EXPECT_EQ(tcp->kind, AddressKind::kTcp);
  EXPECT_EQ(tcp->host, "127.0.0.1");
  EXPECT_EQ(tcp->port, 8080);

  auto wildcard = Address::Parse("tcp:*:0");
  ASSERT_TRUE(wildcard.ok());
  EXPECT_EQ(wildcard->port, 0);

  // Bare path: the pre-net --socket spelling stays accepted.
  auto bare = Address::Parse("/tmp/bare.sock");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->kind, AddressKind::kUnix);
  EXPECT_EQ(bare->path, "/tmp/bare.sock");

  EXPECT_FALSE(Address::Parse("").ok());
  EXPECT_FALSE(Address::Parse("unix:").ok());
  EXPECT_FALSE(Address::Parse("tcp:8080").ok());
  EXPECT_FALSE(Address::Parse("tcp:host:notaport").ok());
  EXPECT_FALSE(Address::Parse("tcp:host:99999").ok());
}

// ---- frame decoder ----------------------------------------------------------

TEST(LineDecoderTest, ReassemblesTornReads) {
  LineDecoder decoder;
  std::vector<std::string> lines;
  const std::string wire = "first line\nsecond\n\nthird\n";
  // Feed one byte at a time: worst-case tearing.
  for (char byte : wire) {
    ASSERT_TRUE(decoder.Feed(&byte, 1, &lines));
  }
  // The empty line between "second" and "third" is dropped.
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "first line");
  EXPECT_EQ(lines[1], "second");
  EXPECT_EQ(lines[2], "third");
  EXPECT_EQ(decoder.pending_bytes(), 0u);
}

TEST(LineDecoderTest, ManyLinesInOneChunk) {
  LineDecoder decoder;
  std::vector<std::string> lines;
  const std::string wire = "a\nb\nc\npartial";
  ASSERT_TRUE(decoder.Feed(wire.data(), wire.size(), &lines));
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(decoder.pending_bytes(), 7u);  // "partial" buffered
  const std::string rest = " done\n";
  ASSERT_TRUE(decoder.Feed(rest.data(), rest.size(), &lines));
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[3], "partial done");
}

TEST(LineDecoderTest, HugeLineWithinCapSurvives) {
  LineDecoder decoder(1 << 20);
  std::vector<std::string> lines;
  std::string big(1 << 20, 'x');
  std::string wire = big + "\n";
  // Feed in 4KB chunks.
  for (size_t off = 0; off < wire.size(); off += 4096) {
    const size_t n = std::min<size_t>(4096, wire.size() - off);
    ASSERT_TRUE(decoder.Feed(wire.data() + off, n, &lines));
  }
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], big);
}

TEST(LineDecoderTest, OversizeWholeChunkRejected) {
  // A complete oversize line arriving with its newline in one chunk must
  // be rejected, not delivered.
  LineDecoder decoder(8);
  std::vector<std::string> lines;
  const std::string wire = "ok\nwaytoolongline\nnever\n";
  EXPECT_FALSE(decoder.Feed(wire.data(), wire.size(), &lines));
  // The in-cap line before the oversize one was still delivered.
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "ok");
  EXPECT_TRUE(decoder.overflowed());
  // Poisoned: later feeds keep failing, even with tiny input.
  EXPECT_FALSE(decoder.Feed("a\n", 2, &lines));
  EXPECT_EQ(lines.size(), 1u);
}

TEST(LineDecoderTest, OversizeTornAcrossReadsRejected) {
  LineDecoder decoder(8);
  std::vector<std::string> lines;
  std::string chunk(5, 'y');
  ASSERT_TRUE(decoder.Feed(chunk.data(), chunk.size(), &lines));
  EXPECT_FALSE(decoder.Feed(chunk.data(), chunk.size(), &lines));
  EXPECT_TRUE(decoder.overflowed());
  EXPECT_TRUE(lines.empty());
}

// ---- event-loop server ------------------------------------------------------

/// Lets the handler lambda reference the server it is installed into
/// (the server is constructed with the handler, so the pointer is filled
/// in afterwards, before Start()).
struct ServerBox {
  NetServer* server = nullptr;
};

TEST(NetServerTest, PipelinedCompletionOrderAndOrderedMode) {
  // The handler holds every request of a connection until the third
  // arrives, then completes them in REVERSE order: an unordered client
  // must see them reversed, an ordered one in request order.
  struct Held {
    std::mutex mu;
    std::vector<std::pair<std::pair<uint64_t, uint64_t>, std::string>> lines;
  };
  auto box = std::make_shared<ServerBox>();
  auto held = std::make_shared<Held>();

  NetServerOptions options;
  options.listeners.push_back(Address::Unix(TestSocketPath("pipeline")));
  NetServer server(
      options, [box, held](uint64_t conn, uint64_t seq, std::string line) {
        if (seq == 0 && StartsWith(line, "ordered")) {
          box->server->SetOrdered(conn);
        }
        std::vector<decltype(held->lines)::value_type> flush;
        {
          std::lock_guard<std::mutex> lock(held->mu);
          held->lines.push_back({{conn, seq}, std::move(line)});
          if (held->lines.size() < 3) return;
          flush.swap(held->lines);
        }
        for (auto it = flush.rbegin(); it != flush.rend(); ++it) {
          box->server->Complete(it->first.first, it->first.second,
                                "echo:" + it->second);
        }
      });
  box->server = &server;
  ASSERT_TRUE(server.Start().ok());
  const std::string target = server.bound_addresses()[0].ToString();

  {
    auto client = ServiceClient::Connect(target);
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client->SendLine("a").ok());
    ASSERT_TRUE(client->SendLine("b").ok());
    ASSERT_TRUE(client->SendLine("c").ok());
    auto r0 = client->ReceiveLine();
    auto r1 = client->ReceiveLine();
    auto r2 = client->ReceiveLine();
    ASSERT_TRUE(r0.ok() && r1.ok() && r2.ok());
    EXPECT_EQ(*r0, "echo:c");  // completion order: reversed
    EXPECT_EQ(*r1, "echo:b");
    EXPECT_EQ(*r2, "echo:a");
  }
  {
    auto client = ServiceClient::Connect(target);
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client->SendLine("ordered-a").ok());
    ASSERT_TRUE(client->SendLine("b").ok());
    ASSERT_TRUE(client->SendLine("c").ok());
    auto r0 = client->ReceiveLine();
    auto r1 = client->ReceiveLine();
    auto r2 = client->ReceiveLine();
    ASSERT_TRUE(r0.ok() && r1.ok() && r2.ok());
    EXPECT_EQ(*r0, "echo:ordered-a");  // request order despite reversed
    EXPECT_EQ(*r1, "echo:b");          // completion
    EXPECT_EQ(*r2, "echo:c");
  }
  EXPECT_EQ(server.stats().lines_dispatched, 6u);
  EXPECT_EQ(server.stats().lines_completed, 6u);
  server.Stop();
}

TEST(NetServerTest, BackpressureStallsReadsUntilClientDrains) {
  // Tiny outbound watermark + fat echo responses: a client that sends
  // a burst without reading must stall the server's reads; once the
  // client drains, every response still arrives intact.
  constexpr int kRequests = 64;
  const std::string payload(32 * 1024, 'p');
  auto box = std::make_shared<ServerBox>();

  NetServerOptions options;
  options.listeners.push_back(Address::Unix(TestSocketPath("pressure")));
  options.max_outbound_bytes = 64 * 1024;
  NetServer server(options, [box, payload](uint64_t conn, uint64_t seq,
                                           std::string line) {
    box->server->Complete(conn, seq, line + ":" + payload);
  });
  box->server = &server;
  ASSERT_TRUE(server.Start().ok());

  auto client =
      ServiceClient::Connect(server.bound_addresses()[0].ToString());
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(client->SendLine(StringFormat("req%d", i)).ok());
  }
  // ~2MB of responses against a 64KB watermark: the stall must trip
  // while the client is not reading.
  ASSERT_TRUE(WaitFor(
      [&server] { return server.stats().backpressure_stalls >= 1; }));

  for (int i = 0; i < kRequests; ++i) {
    auto line = client->ReceiveLine();
    ASSERT_TRUE(line.ok()) << "response " << i;
    EXPECT_EQ(*line, StringFormat("req%d", i) + ":" + payload);
  }
  EXPECT_EQ(server.stats().lines_completed,
            static_cast<uint64_t>(kRequests));
  server.Stop();
}

TEST(NetServerTest, IdleConnectionsAreEvicted) {
  auto box = std::make_shared<ServerBox>();
  NetServerOptions options;
  options.listeners.push_back(Address::Unix(TestSocketPath("idle")));
  options.idle_timeout_ms = 50;
  NetServer server(options,
                   [box](uint64_t conn, uint64_t seq, std::string line) {
                     box->server->Complete(conn, seq, std::move(line));
                   });
  box->server = &server;
  ASSERT_TRUE(server.Start().ok());

  auto client =
      ServiceClient::Connect(server.bound_addresses()[0].ToString());
  ASSERT_TRUE(client.ok());
  // An active round-trip resets the idle clock...
  auto echoed = client->CallLine("alive");
  ASSERT_TRUE(echoed.ok());
  EXPECT_EQ(*echoed, "alive");
  // ...then silence gets the connection evicted: the next read sees EOF.
  auto evicted = client->ReceiveLine();
  EXPECT_FALSE(evicted.ok());
  EXPECT_TRUE(WaitFor([&server] { return server.stats().idle_evicted == 1; }));
  EXPECT_EQ(server.stats().open_connections, 0u);
  server.Stop();
}

TEST(NetServerTest, ConnectionLimitRejectsWithConfiguredLine) {
  auto box = std::make_shared<ServerBox>();
  NetServerOptions options;
  options.listeners.push_back(Address::Unix(TestSocketPath("limit")));
  options.max_connections = 1;
  options.reject_line = "{\"ok\":false,\"code\":\"Unavailable\"}";
  NetServer server(options,
                   [box](uint64_t conn, uint64_t seq, std::string line) {
                     box->server->Complete(conn, seq, std::move(line));
                   });
  box->server = &server;
  ASSERT_TRUE(server.Start().ok());
  const std::string target = server.bound_addresses()[0].ToString();

  auto first = ServiceClient::Connect(target);
  ASSERT_TRUE(first.ok());
  // A round-trip guarantees the first connection is accepted (not still
  // sitting in the listen backlog) before the second one dials.
  ASSERT_TRUE(first->CallLine("hold").ok());

  auto second = ServiceClient::Connect(target);
  ASSERT_TRUE(second.ok());  // connect() succeeds; the server then rejects
  auto reject = second->ReceiveLine();
  ASSERT_TRUE(reject.ok());
  EXPECT_EQ(*reject, options.reject_line);
  auto eof = second->ReceiveLine();
  EXPECT_FALSE(eof.ok());
  EXPECT_GE(server.stats().rejected_over_limit, 1u);

  // The slot frees once the first client leaves.
  first = Status::Unknown("dropped");
  ASSERT_TRUE(WaitFor([&server] { return server.stats().open_connections == 0; }));
  auto third = ServiceClient::Connect(target);
  ASSERT_TRUE(third.ok());
  auto echoed = third->CallLine("in");
  ASSERT_TRUE(echoed.ok());
  EXPECT_EQ(*echoed, "in");
  server.Stop();
}

TEST(NetServerTest, OversizeLineGetsStructuredErrorThenClose) {
  auto box = std::make_shared<ServerBox>();
  NetServerOptions options;
  options.listeners.push_back(Address::Unix(TestSocketPath("oversize")));
  options.max_line_bytes = 128;
  options.oversize_line = "{\"ok\":false,\"code\":\"InvalidArgument\"}";
  NetServer server(options,
                   [box](uint64_t conn, uint64_t seq, std::string line) {
                     box->server->Complete(conn, seq, std::move(line));
                   });
  box->server = &server;
  ASSERT_TRUE(server.Start().ok());

  auto client =
      ServiceClient::Connect(server.bound_addresses()[0].ToString());
  ASSERT_TRUE(client.ok());
  // An in-cap request on the same connection still answers first.
  ASSERT_TRUE(client->SendLine("fine").ok());
  ASSERT_TRUE(client->SendLine(std::string(256, 'z')).ok());
  auto ok_line = client->ReceiveLine();
  ASSERT_TRUE(ok_line.ok());
  EXPECT_EQ(*ok_line, "fine");
  auto err_line = client->ReceiveLine();
  ASSERT_TRUE(err_line.ok());
  EXPECT_EQ(*err_line, options.oversize_line);
  auto eof = client->ReceiveLine();
  EXPECT_FALSE(eof.ok());  // the stream cannot resync: connection closed
  EXPECT_EQ(server.stats().oversize_frames, 1u);
  server.Stop();
}

TEST(NetServerTest, StopDrainsInFlightCompletionFromAnotherThread) {
  // A request completed by a worker thread AFTER Stop() begins must
  // still reach the client before its connection closes.
  struct Pending {
    std::mutex mu;
    uint64_t conn = 0;
    uint64_t seq = 0;
    bool have = false;
  };
  auto pending = std::make_shared<Pending>();
  NetServerOptions options;
  options.listeners.push_back(Address::Unix(TestSocketPath("drain")));
  NetServer server(options, [pending](uint64_t conn, uint64_t seq,
                                      std::string line) {
    std::lock_guard<std::mutex> lock(pending->mu);
    pending->conn = conn;
    pending->seq = seq;
    pending->have = true;
  });
  ASSERT_TRUE(server.Start().ok());

  auto client =
      ServiceClient::Connect(server.bound_addresses()[0].ToString());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->SendLine("slow").ok());
  ASSERT_TRUE(WaitFor([&pending] {
    std::lock_guard<std::mutex> lock(pending->mu);
    return pending->have;
  }));

  std::thread worker([&server, pending] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    std::lock_guard<std::mutex> lock(pending->mu);
    server.Complete(pending->conn, pending->seq, "late-result");
  });
  server.Stop();  // must block until the late completion is flushed
  worker.join();
  EXPECT_TRUE(server.stopped());

  auto line = client->ReceiveLine();
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(*line, "late-result");
  auto eof = client->ReceiveLine();
  EXPECT_FALSE(eof.ok());
}

TEST(NetServerTest, ServesUnixAndTcpSimultaneously) {
  auto box = std::make_shared<ServerBox>();
  NetServerOptions options;
  options.listeners.push_back(Address::Unix(TestSocketPath("dual")));
  options.listeners.push_back(Address::Tcp("127.0.0.1", 0));
  NetServer server(options,
                   [box](uint64_t conn, uint64_t seq, std::string line) {
                     box->server->Complete(conn, seq, "pong:" + line);
                   });
  box->server = &server;
  ASSERT_TRUE(server.Start().ok());
  ASSERT_EQ(server.bound_addresses().size(), 2u);
  EXPECT_NE(server.bound_addresses()[1].port, 0);  // ephemeral resolved

  for (const Address& address : server.bound_addresses()) {
    auto client = ServiceClient::Connect(address.ToString());
    ASSERT_TRUE(client.ok()) << address.ToString();
    auto line = client->CallLine("hi");
    ASSERT_TRUE(line.ok());
    EXPECT_EQ(*line, "pong:hi");
  }
  EXPECT_EQ(server.stats().accepted, 2u);
  server.Stop();
}

}  // namespace
}  // namespace net
}  // namespace rdfmr
