// Structural tests for the NTGA physical compiler: job layout, per-EC
// demuxed outputs, join operator selection (TG_Join / TG_UnbJoin /
// TG_OptUnbJoin), and end-to-end workflow execution details that the
// engine-level tests do not pin down.

#include <gtest/gtest.h>

#include "common/strings.h"
#include "datagen/testbed.h"
#include "mapreduce/workflow.h"
#include "ntga/ntga_compiler.h"
#include "ntga/triplegroup.h"
#include "tests/test_util.h"

namespace rdfmr {
namespace {

CompiledPlan Compile(const std::string& query_id, NtgaStrategy strategy) {
  auto query = GetTestbedQuery(query_id);
  EXPECT_TRUE(query.ok());
  NtgaOptions options;
  options.strategy = strategy;
  options.phi_partitions = 8;
  auto plan = CompileNtgaPlan(*query, "base", "tmp", options);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return std::move(*plan);
}

TEST(NtgaCompilerTest, TwoStarQueryIsTwoJobs) {
  CompiledPlan plan = Compile("B0", NtgaStrategy::kLazyAuto);
  ASSERT_EQ(plan.workflow.jobs.size(), 2u);
  EXPECT_EQ(plan.workflow.jobs[0].name, "tg-group-filter");
  EXPECT_EQ(plan.workflow.jobs[0].full_scans_of_base, 1u);
  EXPECT_EQ(plan.workflow.jobs[1].full_scans_of_base, 0u);
  EXPECT_NE(plan.workflow.jobs[1].name.find("tg-join"), std::string::npos);
}

TEST(NtgaCompilerTest, GroupingJobDemuxesPerEquivalenceClass) {
  CompiledPlan plan = Compile("B0", NtgaStrategy::kLazyAuto);
  const JobSpec& job1 = plan.workflow.jobs[0];
  ASSERT_NE(job1.demux, nullptr);
  ASSERT_EQ(job1.ensure_outputs.size(), 2u);
  EXPECT_EQ(job1.ensure_outputs[0], "tmp/ec0");
  EXPECT_EQ(job1.ensure_outputs[1], "tmp/ec1");
  // The demux function routes a serialized AnnTg by its star id.
  AnnTg tg;
  tg.subject = "s";
  tg.star_id = 1;
  tg.AddPair("p", "o");
  EXPECT_EQ(job1.demux(tg.Serialize()), "1");
}

TEST(NtgaCompilerTest, JoinOperatorNamesFollowThePlan) {
  // B0: all bound -> TG_Join. A3 lazy: full unnest -> TG_UnbJoin.
  // B1 lazy-auto: partial -> TG_OptUnbJoin.
  EXPECT_NE(Compile("B0", NtgaStrategy::kLazyAuto)
                .workflow.jobs[1]
                .name.find("tg-join"),
            std::string::npos);
  EXPECT_NE(Compile("A3", NtgaStrategy::kLazyAuto)
                .workflow.jobs[1]
                .name.find("tg-unbjoin"),
            std::string::npos);
  EXPECT_NE(Compile("B1", NtgaStrategy::kLazyAuto)
                .workflow.jobs[1]
                .name.find("tg-optunbjoin"),
            std::string::npos);
}

TEST(NtgaCompilerTest, SingleStarQueryIsOneJobWithEcFinal) {
  CompiledPlan plan = Compile("A1", NtgaStrategy::kLazyAuto);
  EXPECT_EQ(plan.workflow.jobs.size(), 1u);
  EXPECT_EQ(plan.workflow.final_output_path, "tmp/ec0");
}

TEST(NtgaCompilerTest, ThreeStarQueryChainsJoinOutputs) {
  CompiledPlan plan = Compile("B5", NtgaStrategy::kLazyAuto);
  ASSERT_EQ(plan.workflow.jobs.size(), 3u);
  EXPECT_EQ(plan.workflow.final_output_path, "tmp/tgjoin1");
  // The second join reads the first join's output on one side.
  bool reads_join0 = false;
  for (const MapInput& input : plan.workflow.jobs[2].inputs) {
    if (input.path == "tmp/tgjoin0") reads_join0 = true;
  }
  EXPECT_TRUE(reads_join0);
}

TEST(NtgaCompilerTest, StarPhasePathsAreTheEcFiles) {
  CompiledPlan plan = Compile("B0", NtgaStrategy::kLazyAuto);
  EXPECT_EQ(plan.star_phase_paths,
            (std::vector<std::string>{"tmp/ec0", "tmp/ec1"}));
}

TEST(NtgaCompilerTest, NullQueryRejected) {
  NtgaOptions options;
  EXPECT_FALSE(CompileNtgaPlan(nullptr, "base", "tmp", options).ok());
}

// ---- Execution details --------------------------------------------------------

TEST(NtgaCompilerTest, EagerGroupingWritesPerfectTriplegroups) {
  auto triples = testing_util::SmallDataset(DatasetFamily::kBsbm);
  auto dfs = testing_util::MakeDfsWithBase(triples);
  ASSERT_NE(dfs, nullptr);
  CompiledPlan plan = Compile("B1", NtgaStrategy::kEager);
  WorkflowSpec spec = plan.workflow;
  spec.intermediate_paths.clear();  // keep files for inspection
  WorkflowResult result = RunWorkflow(dfs.get(), spec);
  ASSERT_TRUE(result.ok()) << result.status.ToString();

  auto query = GetTestbedQuery("B1");
  ASSERT_TRUE(query.ok());
  auto ec0 = dfs->ReadFile("tmp/ec0");
  ASSERT_TRUE(ec0.ok());
  ASSERT_FALSE(ec0->empty());
  for (const std::string& line : *ec0) {
    auto tg = AnnTg::Deserialize(line);
    ASSERT_TRUE(tg.ok());
    // Eager: the unbound pattern (index 2 in B1's first star) is pinned to
    // exactly one candidate in every record.
    const auto& star = (*query)->stars()[0];
    std::vector<size_t> unbound = star.UnboundIndexes();
    ASSERT_EQ(unbound.size(), 1u);
    auto it = tg->overrides.find(static_cast<uint32_t>(unbound[0]));
    ASSERT_NE(it, tg->overrides.end());
    EXPECT_EQ(it->second.size(), 1u);
  }
}

TEST(NtgaCompilerTest, LazyGroupingKeepsGroupsNested) {
  auto triples = testing_util::SmallDataset(DatasetFamily::kBsbm);
  auto dfs = testing_util::MakeDfsWithBase(triples);
  ASSERT_NE(dfs, nullptr);
  CompiledPlan plan = Compile("B1", NtgaStrategy::kLazyAuto);
  WorkflowSpec spec = plan.workflow;
  spec.intermediate_paths.clear();
  WorkflowResult result = RunWorkflow(dfs.get(), spec);
  ASSERT_TRUE(result.ok());

  auto ec0 = dfs->ReadFile("tmp/ec0");
  ASSERT_TRUE(ec0.ok());
  ASSERT_FALSE(ec0->empty());
  size_t with_overrides = 0;
  for (const std::string& line : *ec0) {
    auto tg = AnnTg::Deserialize(line);
    ASSERT_TRUE(tg.ok());
    if (!tg->overrides.empty()) ++with_overrides;
  }
  EXPECT_EQ(with_overrides, 0u)
      << "lazy strategies must not unnest at the grouping cycle";
  // One nested group per qualifying subject (vs one per candidate for
  // eager) — the A1-style representation gap.
  auto eager_plan = Compile("B1", NtgaStrategy::kEager);
  // Re-run eager on a fresh DFS for comparison.
  auto dfs2 = testing_util::MakeDfsWithBase(triples);
  WorkflowSpec spec2 = eager_plan.workflow;
  spec2.intermediate_paths.clear();
  ASSERT_TRUE(RunWorkflow(dfs2.get(), spec2).ok());
  auto eager_ec0 = dfs2->ReadFile("tmp/ec0");
  ASSERT_TRUE(eager_ec0.ok());
  EXPECT_LT(ec0->size(), eager_ec0->size());
}

TEST(NtgaCompilerTest, EmptyEcFileStillLetsJoinRun) {
  // A dataset where star 1 (features) never matches: the grouping job must
  // still create an (empty) EC file so the join job's input exists.
  std::vector<Triple> triples = {
      {"p1", "label", "x"}, {"p1", "type", "t"}, {"p1", "other", "y"},
  };
  auto dfs = testing_util::MakeDfsWithBase(triples);
  ASSERT_NE(dfs, nullptr);
  auto query = GetTestbedQuery("B1");
  ASSERT_TRUE(query.ok());
  EngineOptions options;
  options.kind = EngineKind::kNtgaLazy;
  auto exec = RunQuery(dfs.get(), "base", *query, options);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  ASSERT_TRUE(exec->stats.ok()) << exec->stats.status.ToString();
  EXPECT_TRUE(exec->answers.empty());
}

}  // namespace
}  // namespace rdfmr
