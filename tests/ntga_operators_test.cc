// Tests for the NTGA operators — the paper's Definitions 1-3 — including
// the property-style invariants:
//   * σ^βγ keeps exactly the groups whose bound properties are satisfied;
//   * μ^β yields exactly one perfect triplegroup per candidate combination;
//   * μ^β_φm produces <= m groups whose candidates partition the full set,
//     and completing the unnest is transparent (same expansion);
//   * expansion of a built group equals the reference matcher (Lemma 1 at
//     the operator level), exercised over randomized graphs.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "common/strings.h"
#include "ntga/operators.h"
#include "query/matcher.h"

namespace rdfmr {
namespace {

StarPattern BioStar() {
  StarPattern star;
  star.subject_var = "g";
  star.patterns.push_back(TriplePattern::Bound(
      NodePattern::Var("g"), "label", NodePattern::Var("l")));
  star.patterns.push_back(TriplePattern::Bound(
      NodePattern::Var("g"), "xGO", NodePattern::Var("go")));
  star.patterns.push_back(TriplePattern::Unbound(
      NodePattern::Var("g"), "up", NodePattern::Var("x")));
  return star;
}

std::vector<PropObj> BioPairs() {
  return {
      {"label", "retinoid"}, {"xGO", "go1"},   {"xGO", "go9"},
      {"synonym", "RCoR-1"}, {"xRef", "ref7"},
  };
}

// ---- PhiPartition ------------------------------------------------------------

TEST(PhiPartitionTest, InRangeAndDeterministic) {
  for (uint32_t m : {1u, 2u, 16u, 1024u}) {
    for (int i = 0; i < 50; ++i) {
      std::string v = "value" + std::to_string(i);
      uint32_t p = PhiPartition(v, m);
      EXPECT_LT(p, m);
      EXPECT_EQ(p, PhiPartition(v, m));
    }
  }
}

// ---- BuildAnnTg (σ^γ / σ^βγ) ---------------------------------------------------

TEST(BuildAnnTgTest, AcceptsGroupWithAllBoundProperties) {
  auto tg = BuildAnnTg(BioStar(), 0, "gene9", BioPairs());
  ASSERT_TRUE(tg.has_value());
  EXPECT_EQ(tg->subject, "gene9");
  EXPECT_EQ(tg->star_id, 0u);
  EXPECT_TRUE(tg->HasProperty("label"));
  EXPECT_TRUE(tg->HasProperty("xGO"));
  // Candidates for the unbound pattern are retained.
  EXPECT_TRUE(tg->HasProperty("synonym"));
  EXPECT_TRUE(tg->HasProperty("xRef"));
}

TEST(BuildAnnTgTest, RejectsGroupMissingBoundProperty) {
  std::vector<PropObj> pairs = {{"xGO", "go1"}, {"synonym", "s"}};
  EXPECT_FALSE(BuildAnnTg(BioStar(), 0, "g", pairs).has_value())
      << "missing 'label' must fail the β group-filter (ftg2 in Fig. 5)";
}

TEST(BuildAnnTgTest, BoundObjectConstraintValidated) {
  StarPattern star;
  star.subject_var = "g";
  star.patterns.push_back(TriplePattern::Bound(
      NodePattern::Var("g"), "label", NodePattern::Var("l", "hexo")));
  std::vector<PropObj> pairs = {{"label", "regulator gene"}};
  EXPECT_FALSE(BuildAnnTg(star, 0, "g", pairs).has_value());
  pairs = {{"label", "hexokinase gene"}};
  EXPECT_TRUE(BuildAnnTg(star, 0, "g", pairs).has_value());
}

TEST(BuildAnnTgTest, UnboundPatternNeedsAtLeastOneCandidate) {
  StarPattern star;
  star.subject_var = "g";
  star.patterns.push_back(TriplePattern::Bound(
      NodePattern::Var("g"), "label", NodePattern::Var("l")));
  star.patterns.push_back(TriplePattern::Unbound(
      NodePattern::Var("g"), "up", NodePattern::Var("x", "nur77")));
  std::vector<PropObj> pairs = {{"label", "a"}, {"xGO", "go1"}};
  EXPECT_FALSE(BuildAnnTg(star, 0, "g", pairs).has_value());
  pairs.push_back({"interactsWith", "gene_nur77"});
  EXPECT_TRUE(BuildAnnTg(star, 0, "g", pairs).has_value());
}

TEST(BuildAnnTgTest, IrrelevantPairsDropped) {
  StarPattern star;
  star.subject_var = "g";
  star.patterns.push_back(TriplePattern::Bound(
      NodePattern::Var("g"), "label", NodePattern::Var("l")));
  star.patterns.push_back(TriplePattern::Unbound(
      NodePattern::Var("g"), "up", NodePattern::Var("x", "go_")));
  std::vector<PropObj> pairs = {
      {"label", "a"}, {"xGO", "go_1"}, {"xRef", "ref_1"}};
  auto tg = BuildAnnTg(star, 0, "g", pairs);
  ASSERT_TRUE(tg.has_value());
  EXPECT_FALSE(tg->HasProperty("xRef"))
      << "pairs failing every pattern's constraint are dead weight";
}

// ---- UnboundCandidates ---------------------------------------------------------

TEST(UnboundCandidatesTest, ImplicitSetIsAllMatchingPairs) {
  auto tg = BuildAnnTg(BioStar(), 0, "gene9", BioPairs());
  ASSERT_TRUE(tg.has_value());
  std::vector<PropObj> cands = UnboundCandidates(BioStar(), *tg, 2);
  EXPECT_EQ(cands.size(), 5u)
      << "bound-property pairs also serve as unbound candidates";
}

TEST(UnboundCandidatesTest, OverrideWins) {
  auto tg = BuildAnnTg(BioStar(), 0, "gene9", BioPairs());
  ASSERT_TRUE(tg.has_value());
  tg->overrides[2] = {PropObj{"xRef", "ref7"}};
  std::vector<PropObj> cands = UnboundCandidates(BioStar(), *tg, 2);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0].property, "xRef");
}

// ---- BetaUnnest (μ^β) -----------------------------------------------------------

TEST(BetaUnnestTest, OnePerfectGroupPerCandidate) {
  StarPattern star = BioStar();
  auto tg = BuildAnnTg(star, 0, "gene9", BioPairs());
  ASSERT_TRUE(tg.has_value());
  std::vector<AnnTg> perfect = BetaUnnest(star, *tg);
  EXPECT_EQ(perfect.size(), 5u) << "Definition 2: u candidates -> u groups";
  for (const AnnTg& p : perfect) {
    ASSERT_EQ(p.overrides.count(2), 1u);
    EXPECT_EQ(p.overrides.at(2).size(), 1u);
    // Perfect groups keep the nested bound component and shed the rest.
    EXPECT_TRUE(p.HasProperty("label"));
    EXPECT_TRUE(p.HasProperty("xGO"));
    EXPECT_FALSE(p.HasProperty("synonym"));
  }
}

TEST(BetaUnnestTest, MultipleUnboundPatternsMultiply) {
  StarPattern star;
  star.subject_var = "g";
  star.patterns.push_back(TriplePattern::Bound(
      NodePattern::Var("g"), "label", NodePattern::Var("l")));
  star.patterns.push_back(TriplePattern::Unbound(
      NodePattern::Var("g"), "up1", NodePattern::Var("x1")));
  star.patterns.push_back(TriplePattern::Unbound(
      NodePattern::Var("g"), "up2", NodePattern::Var("x2")));
  std::vector<PropObj> pairs = {
      {"label", "a"}, {"p1", "1"}, {"p2", "2"}};
  auto tg = BuildAnnTg(star, 0, "g", pairs);
  ASSERT_TRUE(tg.has_value());
  EXPECT_EQ(BetaUnnest(star, *tg).size(), 9u) << "3 candidates x 3";
}

TEST(BetaUnnestTest, AlreadyPinnedPatternNotReexpanded) {
  StarPattern star = BioStar();
  auto tg = BuildAnnTg(star, 0, "gene9", BioPairs());
  ASSERT_TRUE(tg.has_value());
  tg->overrides[2] = {PropObj{"xRef", "ref7"}};
  std::vector<AnnTg> out = BetaUnnest(star, *tg);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].overrides.at(2)[0].property, "xRef");
}

// ---- PartialBetaUnnest (μ^β_φm) ---------------------------------------------------

TEST(PartialBetaUnnestTest, AtMostMGroupsPartitioningCandidates) {
  StarPattern star = BioStar();
  auto tg = BuildAnnTg(star, 0, "gene9", BioPairs());
  ASSERT_TRUE(tg.has_value());
  for (uint32_t m : {1u, 2u, 3u, 64u}) {
    auto partitions = PartialBetaUnnest(star, *tg, 2, m);
    EXPECT_LE(partitions.size(), static_cast<size_t>(m));
    // The union of all partitions' candidates is the full candidate set.
    std::vector<PropObj> collected;
    for (const auto& [partition, restricted] : partitions) {
      EXPECT_LT(partition, m);
      const auto& cands = restricted.overrides.at(2);
      for (const PropObj& po : cands) {
        EXPECT_EQ(PhiPartition(po.object, m), partition)
            << "candidate must live in its φ partition";
        collected.push_back(po);
      }
    }
    std::vector<PropObj> full = UnboundCandidates(star, *tg, 2);
    std::sort(collected.begin(), collected.end());
    std::sort(full.begin(), full.end());
    EXPECT_EQ(collected, full);
  }
}

TEST(PartialBetaUnnestTest, SinglePartitionKeepsGroupWhole) {
  StarPattern star = BioStar();
  auto tg = BuildAnnTg(star, 0, "gene9", BioPairs());
  ASSERT_TRUE(tg.has_value());
  auto partitions = PartialBetaUnnest(star, *tg, 2, 1);
  ASSERT_EQ(partitions.size(), 1u);
  EXPECT_EQ(partitions[0].second.overrides.at(2).size(), 5u);
}

TEST(PartialBetaUnnestTest, ExpansionIsPartitionTransparent) {
  // Completing the unnest per partition yields exactly the expansion of the
  // original group.
  StarPattern star = BioStar();
  auto tg = BuildAnnTg(star, 0, "gene9", BioPairs());
  ASSERT_TRUE(tg.has_value());
  std::vector<Solution> direct = ExpandAnnTg(star, *tg);
  std::vector<Solution> via_partitions;
  for (const auto& [_, restricted] : PartialBetaUnnest(star, *tg, 2, 3)) {
    std::vector<Solution> part = ExpandAnnTg(star, restricted);
    via_partitions.insert(via_partitions.end(), part.begin(), part.end());
  }
  std::sort(direct.begin(), direct.end());
  std::sort(via_partitions.begin(), via_partitions.end());
  EXPECT_EQ(direct, via_partitions);
}

// ---- Expansion equivalence (Lemma 1, operator level) ------------------------------

TEST(ExpandTest, MatchesReferenceMatcherOnExample) {
  StarPattern star = BioStar();
  std::vector<Triple> triples;
  for (const PropObj& po : BioPairs()) {
    triples.emplace_back("gene9", po.property, po.object);
  }
  auto tg = BuildAnnTg(star, 0, "gene9", BioPairs());
  ASSERT_TRUE(tg.has_value());
  std::vector<Solution> expanded = ExpandAnnTg(star, *tg);
  std::vector<Solution> reference = MatchStar(star, triples);
  std::sort(expanded.begin(), expanded.end());
  std::sort(reference.begin(), reference.end());
  EXPECT_EQ(expanded, reference);
}

TEST(ExpandTest, BetaUnnestPreservesExpansion) {
  StarPattern star = BioStar();
  auto tg = BuildAnnTg(star, 0, "gene9", BioPairs());
  ASSERT_TRUE(tg.has_value());
  std::vector<Solution> nested = ExpandAnnTg(star, *tg);
  std::vector<Solution> unnested;
  for (const AnnTg& p : BetaUnnest(star, *tg)) {
    std::vector<Solution> each = ExpandAnnTg(star, p);
    unnested.insert(unnested.end(), each.begin(), each.end());
  }
  std::sort(nested.begin(), nested.end());
  std::sort(unnested.begin(), unnested.end());
  EXPECT_EQ(nested, unnested);
}

// Randomized operator-level equivalence sweep.
class RandomizedExpandTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomizedExpandTest, BuildPlusExpandEqualsMatcher) {
  Rng rng(GetParam());
  // Random star: 1-2 bound patterns, 1-2 unbound (possibly filtered).
  StarPattern star;
  star.subject_var = "s";
  size_t num_bound = 1 + rng.Uniform(2);
  size_t num_unbound = 1 + rng.Uniform(2);
  for (size_t i = 0; i < num_bound; ++i) {
    star.patterns.push_back(TriplePattern::Bound(
        NodePattern::Var("s"),
        "bp" + std::to_string(rng.Uniform(3)),
        NodePattern::Var("bo" + std::to_string(i))));
  }
  for (size_t i = 0; i < num_unbound; ++i) {
    std::string filter = rng.Chance(0.5) ? "tok" : "";
    star.patterns.push_back(TriplePattern::Unbound(
        NodePattern::Var("s"), "up" + std::to_string(i),
        NodePattern::Var("uo" + std::to_string(i), filter)));
  }
  // Random subject pairs over a small vocabulary.
  std::vector<PropObj> pairs;
  std::vector<Triple> triples;
  size_t num_pairs = 2 + rng.Uniform(8);
  for (size_t i = 0; i < num_pairs; ++i) {
    std::string p = "bp" + std::to_string(rng.Uniform(5));
    std::string o = StringFormat("%sobj%llu", rng.Chance(0.4) ? "tok_" : "",
                                 static_cast<unsigned long long>(
                                     rng.Uniform(6)));
    pairs.push_back(PropObj{p, o});
    triples.emplace_back("s", p, o);
  }
  std::sort(triples.begin(), triples.end());
  triples.erase(std::unique(triples.begin(), triples.end()), triples.end());

  std::vector<Solution> reference = MatchStar(star, triples);
  auto tg = BuildAnnTg(star, 0, "s", pairs);
  std::vector<Solution> expanded;
  if (tg.has_value()) {
    expanded = ExpandAnnTg(star, *tg);
  }
  std::sort(reference.begin(), reference.end());
  std::sort(expanded.begin(), expanded.end());
  EXPECT_EQ(expanded, reference)
      << "seed " << GetParam() << ": operator pipeline must agree with the "
      << "reference matcher (including empty results)";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedExpandTest,
                         ::testing::Range<uint64_t>(0, 40));

}  // namespace
}  // namespace rdfmr
