// Tests for the rewrite rules (R1-R5): filter flavors, eager-unnest flags,
// join-site resolution, and the per-strategy unnest placement decisions —
// verified against the paper's testbed query shapes.

#include <gtest/gtest.h>

#include "datagen/testbed.h"
#include "ntga/logical_plan.h"

namespace rdfmr {
namespace {

NtgaLogicalPlan PlanFor(const std::string& query_id, NtgaStrategy strategy) {
  auto query = GetTestbedQuery(query_id);
  EXPECT_TRUE(query.ok()) << query.status().ToString();
  auto plan = RewriteToNtga(**query, strategy);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return *plan;
}

TEST(RewriteTest, BoundOnlyQueryUsesPlainGroupFilter) {
  NtgaLogicalPlan plan = PlanFor("B0", NtgaStrategy::kLazyAuto);
  ASSERT_EQ(plan.beta_filter.size(), 2u);
  EXPECT_FALSE(plan.beta_filter[0]);
  EXPECT_FALSE(plan.beta_filter[1]);
  EXPECT_FALSE(plan.eager_unnest[0]);
  ASSERT_EQ(plan.joins.size(), 1u);
  EXPECT_FALSE(plan.joins[0].partial);
  EXPECT_EQ(plan.joins[0].left.unnest, UnnestPlacement::kNone);
  EXPECT_EQ(plan.joins[0].right.unnest, UnnestPlacement::kNone);
}

TEST(RewriteTest, UnboundStarGetsBetaFilter) {
  NtgaLogicalPlan plan = PlanFor("B1", NtgaStrategy::kLazyAuto);
  EXPECT_TRUE(plan.beta_filter[0]) << "star with ?up needs σ^βγ";
  EXPECT_FALSE(plan.beta_filter[1]) << "feature star is all bound";
}

TEST(RewriteTest, EagerStrategyUnnestsAtGroupingCycle) {
  NtgaLogicalPlan plan = PlanFor("B1", NtgaStrategy::kEager);
  EXPECT_TRUE(plan.eager_unnest[0]);
  ASSERT_EQ(plan.joins.size(), 1u);
  // Already unnested: nothing left to do at the join's map phase.
  EXPECT_EQ(plan.joins[0].left.unnest, UnnestPlacement::kNone);
  EXPECT_EQ(plan.joins[0].right.unnest, UnnestPlacement::kNone);
  EXPECT_FALSE(plan.joins[0].partial);
}

TEST(RewriteTest, LazyAutoPicksPartialForUnboundObjectJoin) {
  // B1 joins on a fully unbound object -> rule R5 picks μ^β_φm.
  NtgaLogicalPlan plan = PlanFor("B1", NtgaStrategy::kLazyAuto);
  ASSERT_EQ(plan.joins.size(), 1u);
  const JoinCyclePlan& join = plan.joins[0];
  EXPECT_TRUE(join.partial);
  const JoinSidePlan& unbound_side =
      join.left.site_unbound ? join.left : join.right;
  EXPECT_EQ(unbound_side.unnest, UnnestPlacement::kLazyPartial);
}

TEST(RewriteTest, LazyAutoPicksFullForPartiallyBoundObjectJoin) {
  // A3 joins on ?go, the object of an unbound pattern filtered by "go_".
  NtgaLogicalPlan plan = PlanFor("A3", NtgaStrategy::kLazyAuto);
  ASSERT_EQ(plan.joins.size(), 1u);
  const JoinCyclePlan& join = plan.joins[0];
  EXPECT_FALSE(join.partial);
  const JoinSidePlan& unbound_side =
      join.left.site_unbound ? join.left : join.right;
  EXPECT_TRUE(unbound_side.site_unbound);
  EXPECT_EQ(unbound_side.unnest, UnnestPlacement::kLazyFull);
}

TEST(RewriteTest, UnboundNotInJoinIsNeverUnnested) {
  // B4's unbound pattern does not participate in the join: the join lands
  // on the star's subject, so no unnest is planned anywhere (lazy).
  NtgaLogicalPlan plan = PlanFor("B4", NtgaStrategy::kLazyAuto);
  ASSERT_EQ(plan.joins.size(), 1u);
  EXPECT_EQ(plan.joins[0].left.unnest, UnnestPlacement::kNone);
  EXPECT_EQ(plan.joins[0].right.unnest, UnnestPlacement::kNone);
  EXPECT_FALSE(plan.eager_unnest[0]);
}

TEST(RewriteTest, SubjectSitePreferredOverObjectSites) {
  NtgaLogicalPlan plan = PlanFor("B4", NtgaStrategy::kLazyAuto);
  const JoinCyclePlan& join = plan.joins[0];
  // One side must join by its star's subject (?p).
  bool subject_side = (join.left.site_tp == -1) || (join.right.site_tp == -1);
  EXPECT_TRUE(subject_side);
}

TEST(RewriteTest, LazyFullForcesFullEverywhere) {
  NtgaLogicalPlan plan = PlanFor("B1", NtgaStrategy::kLazyFull);
  const JoinCyclePlan& join = plan.joins[0];
  const JoinSidePlan& unbound_side =
      join.left.site_unbound ? join.left : join.right;
  EXPECT_EQ(unbound_side.unnest, UnnestPlacement::kLazyFull);
  EXPECT_FALSE(join.partial);
}

TEST(RewriteTest, LazyPartialForcesPartial) {
  NtgaLogicalPlan plan = PlanFor("A3", NtgaStrategy::kLazyPartial);
  const JoinCyclePlan& join = plan.joins[0];
  EXPECT_TRUE(join.partial);
}

TEST(RewriteTest, ThreeStarQueryPlansTwoJoinCycles) {
  NtgaLogicalPlan plan = PlanFor("B5", NtgaStrategy::kLazyAuto);
  EXPECT_EQ(plan.joins.size(), 2u);
  // After the first join the left side's relation contains both stars.
  EXPECT_EQ(plan.joins[1].left.stars.size() +
                plan.joins[1].right.stars.size(),
            3u);
}

TEST(RewriteTest, A5JoinOnSecondUnboundObject) {
  NtgaLogicalPlan plan = PlanFor("A5", NtgaStrategy::kLazyAuto);
  ASSERT_EQ(plan.joins.size(), 1u);
  const JoinCyclePlan& join = plan.joins[0];
  const JoinSidePlan& unbound_side =
      join.left.site_unbound ? join.left : join.right;
  EXPECT_TRUE(unbound_side.site_unbound);
  EXPECT_TRUE(join.partial) << "?a is fully unbound -> partial unnest";
}

TEST(RewriteTest, ToStringRendersAlgebra) {
  auto query = GetTestbedQuery("B1");
  ASSERT_TRUE(query.ok());
  auto plan = RewriteToNtga(**query, NtgaStrategy::kLazyAuto);
  ASSERT_TRUE(plan.ok());
  std::string rendered = plan->ToString(**query);
  EXPECT_NE(rendered.find("MR1"), std::string::npos);
  EXPECT_NE(rendered.find("MR2"), std::string::npos);
  EXPECT_NE(rendered.find("EC0"), std::string::npos);
  EXPECT_NE(rendered.find("TG_OptUnbJoin"), std::string::npos);
}

TEST(RewriteTest, StrategyNames) {
  EXPECT_STREQ(NtgaStrategyToString(NtgaStrategy::kEager), "EagerUnnest");
  EXPECT_STREQ(NtgaStrategyToString(NtgaStrategy::kLazyAuto), "LazyUnnest");
}

}  // namespace
}  // namespace rdfmr
