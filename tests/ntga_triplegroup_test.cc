// Unit tests for the TripleGroup data model: nested pair storage,
// compaction rules, serialization (with adversarial strings), and joined
// triplegroups.

#include <gtest/gtest.h>

#include "ntga/triplegroup.h"

namespace rdfmr {
namespace {

StarPattern StarWithUnbound() {
  StarPattern star;
  star.subject_var = "g";
  star.patterns.push_back(TriplePattern::Bound(
      NodePattern::Var("g"), "label", NodePattern::Var("l")));
  star.patterns.push_back(TriplePattern::Bound(
      NodePattern::Var("g"), "xGO", NodePattern::Var("go")));
  star.patterns.push_back(TriplePattern::Unbound(
      NodePattern::Var("g"), "up", NodePattern::Var("x")));
  return star;
}

TEST(AnnTgTest, AddPairDeduplicatesAndSorts) {
  AnnTg tg;
  tg.AddPair("xGO", "go9");
  tg.AddPair("xGO", "go1");
  tg.AddPair("xGO", "go9");
  ASSERT_EQ(tg.pairs.at("xGO"),
            (std::vector<std::string>{"go1", "go9"}));
  EXPECT_EQ(tg.PairCount(), 2u);
}

TEST(AnnTgTest, AllPairsFlattensInOrder) {
  AnnTg tg;
  tg.AddPair("b", "2");
  tg.AddPair("a", "1");
  std::vector<PropObj> pairs = tg.AllPairs();
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0].property, "a");
  EXPECT_EQ(pairs[1].property, "b");
}

TEST(AnnTgTest, ToTriplesIncludesOverrides) {
  AnnTg tg;
  tg.subject = "gene9";
  tg.AddPair("label", "retinoid");
  tg.overrides[2] = {PropObj{"xRef", "ref1"}};
  std::vector<Triple> triples = tg.ToTriples();
  ASSERT_EQ(triples.size(), 2u);
  EXPECT_EQ(triples[0], Triple("gene9", "label", "retinoid"));
  EXPECT_EQ(triples[1], Triple("gene9", "xRef", "ref1"));
}

TEST(AnnTgTest, CompactKeepsBoundAndOpenUnboundCandidates) {
  StarPattern star = StarWithUnbound();
  AnnTg tg;
  tg.subject = "g";
  tg.AddPair("label", "l1");
  tg.AddPair("xGO", "go1");
  tg.AddPair("synonym", "s1");  // only an unbound candidate
  tg.Compact(star);
  // The unbound pattern is unrestricted and not overridden: all pairs stay.
  EXPECT_TRUE(tg.HasProperty("synonym"));
  EXPECT_TRUE(tg.HasProperty("label"));
}

TEST(AnnTgTest, CompactDropsCandidatesOncePinned) {
  StarPattern star = StarWithUnbound();
  AnnTg tg;
  tg.subject = "g";
  tg.AddPair("label", "l1");
  tg.AddPair("xGO", "go1");
  tg.AddPair("synonym", "s1");
  tg.overrides[2] = {PropObj{"synonym", "s1"}};  // pin the unbound pattern
  tg.Compact(star);
  EXPECT_FALSE(tg.HasProperty("synonym"))
      << "a pinned pattern's candidates must be shed";
  EXPECT_TRUE(tg.HasProperty("label"));
  EXPECT_TRUE(tg.HasProperty("xGO"));
}

TEST(AnnTgTest, CompactRespectsOpenPatternsObjectFilter) {
  // Star with TWO unbound patterns, the second filtered; pin the first.
  StarPattern star;
  star.subject_var = "g";
  star.patterns.push_back(TriplePattern::Bound(
      NodePattern::Var("g"), "subType", NodePattern::Var("st")));
  star.patterns.push_back(TriplePattern::Unbound(
      NodePattern::Var("g"), "up1", NodePattern::Var("a")));
  star.patterns.push_back(TriplePattern::Unbound(
      NodePattern::Var("g"), "up2", NodePattern::Var("o", "nur77")));
  AnnTg tg;
  tg.subject = "g";
  tg.AddPair("subType", "protein");
  tg.AddPair("interactsWith", "gene_nur77");
  tg.AddPair("xGO", "go1");
  tg.overrides[1] = {PropObj{"xGO", "go1"}};  // pin up1
  tg.Compact(star);
  EXPECT_TRUE(tg.HasProperty("subType")) << "bound pair stays";
  EXPECT_TRUE(tg.HasProperty("interactsWith"))
      << "still a candidate for the filtered open pattern";
  EXPECT_FALSE(tg.HasProperty("xGO"))
      << "cannot satisfy the open pattern's 'nur77' filter";
}

TEST(AnnTgTest, SerdeRoundtripBasic) {
  AnnTg tg;
  tg.subject = "gene9";
  tg.star_id = 3;
  tg.AddPair("label", "retinoid receptor");
  tg.AddPair("xGO", "go1");
  tg.AddPair("xGO", "go9");
  tg.overrides[2] = {PropObj{"xRef", "ref1"}, PropObj{"xRef", "ref2"}};
  auto back = AnnTg::Deserialize(tg.Serialize());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, tg);
}

class AnnTgSerdeParamTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AnnTgSerdeParamTest, RoundtripsWithAdversarialStrings) {
  const std::string& nasty = GetParam();
  AnnTg tg;
  tg.subject = nasty;
  tg.star_id = 7;
  tg.AddPair(nasty + "_p", nasty + "_o");
  tg.AddPair("normal", nasty);
  tg.overrides[0] = {PropObj{nasty, nasty}};
  auto back = AnnTg::Deserialize(tg.Serialize());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, tg);
}

INSTANTIATE_TEST_SUITE_P(
    Nasty, AnnTgSerdeParamTest,
    ::testing::Values("plain", "with,comma", "with\ttab",
                      std::string("\x1F\x1D\x1E"), "back\\slash\\",
                      "new\nline", "=;|,", ""));

TEST(AnnTgTest, PeekStarIdMatchesFull) {
  AnnTg tg;
  tg.subject = "s";
  tg.star_id = 42;
  tg.AddPair("p", "o");
  auto peeked = AnnTg::PeekStarId(tg.Serialize());
  ASSERT_TRUE(peeked.ok());
  EXPECT_EQ(*peeked, 42u);
}

TEST(AnnTgTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(AnnTg::Deserialize("").ok());
  EXPECT_FALSE(AnnTg::Deserialize("no separators at all").ok());
  EXPECT_FALSE(AnnTg::PeekStarId("nope").ok());
}

TEST(AnnTgTest, EmptyGroupSerde) {
  AnnTg tg;
  tg.subject = "lonely";
  tg.star_id = 0;
  auto back = AnnTg::Deserialize(tg.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, tg);
}

// ---- JoinedTg -----------------------------------------------------------------

TEST(JoinedTgTest, SerdeRoundtripMultiComponent) {
  AnnTg a;
  a.subject = "gene9";
  a.star_id = 0;
  a.AddPair("label", "retinoid");
  AnnTg b;
  b.subject = "go1";
  b.star_id = 1;
  b.AddPair("goLabel", "molecular function");
  b.overrides[1] = {PropObj{"goSyn", "mf"}};
  JoinedTg joined;
  joined.components = {a, b};
  auto back = JoinedTg::Deserialize(joined.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, joined);
}

TEST(JoinedTgTest, SingleAnnTgLineParsesAsOneComponent) {
  AnnTg a;
  a.subject = "s";
  a.star_id = 5;
  a.AddPair("p", "o");
  auto back = JoinedTg::Deserialize(a.Serialize());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->components.size(), 1u);
  EXPECT_EQ(back->components[0], a);
}

TEST(JoinedTgTest, ComponentForStar) {
  AnnTg a, b;
  a.star_id = 0;
  a.subject = "x";
  b.star_id = 2;
  b.subject = "y";
  JoinedTg joined;
  joined.components = {a, b};
  ASSERT_NE(joined.ComponentForStar(2), nullptr);
  EXPECT_EQ(joined.ComponentForStar(2)->subject, "y");
  EXPECT_EQ(joined.ComponentForStar(1), nullptr);
}

}  // namespace
}  // namespace rdfmr
