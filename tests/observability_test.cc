// Tests for the observability stack: the MetricsRegistry (naming
// convention, Prometheus/JSON export, thread-safety), the span tracing
// API (disabled-context zero-op contract, Chrome export), the golden
// span-tree contract (structure and non-time attributes byte-identical
// across thread counts), the RuntimeOptions precedence rule, and the
// versioned NDJSON protocol (version stamping/rejection, stats formats,
// the metrics verb).

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "common/json.h"
#include "common/metrics.h"
#include "common/runtime_options.h"
#include "common/trace.h"
#include "datagen/testbed.h"
#include "engine/engine.h"
#include "rdf/triple.h"
#include "service/protocol.h"
#include "service/query_service.h"
#include "tests/test_util.h"

namespace rdfmr {
namespace {

using testing_util::MakeDfsWithBase;
using testing_util::RoomyCluster;
using testing_util::SmallDataset;

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

/// Restores (or re-clears) one environment variable on destruction so
/// precedence tests cannot leak state into other tests.
class EnvVarGuard {
 public:
  explicit EnvVarGuard(const char* name) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_) saved_ = old;
    ::unsetenv(name);
  }
  ~EnvVarGuard() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  EnvVarGuard(const EnvVarGuard&) = delete;
  EnvVarGuard& operator=(const EnvVarGuard&) = delete;

 private:
  const char* name_;
  bool had_ = false;
  std::string saved_;
};

// ---- Metric naming convention ----------------------------------------------

TEST(MetricNameTest, AcceptsConventionalNames) {
  EXPECT_TRUE(MetricsRegistry::IsValidMetricName("rdfmr_mr_map_micros"));
  EXPECT_TRUE(
      MetricsRegistry::IsValidMetricName("rdfmr_ntga_beta_unnest_calls"));
  EXPECT_TRUE(MetricsRegistry::IsValidMetricName(
      "rdfmr_service_result_cache_bytes"));
  EXPECT_TRUE(MetricsRegistry::IsValidMetricName("rdfmr_dfs_blocks_count"));
}

TEST(MetricNameTest, RejectsMalformedNames) {
  // Too few tokens (needs rdfmr + area + name + unit). Negative examples
  // are assembled at runtime so the source linter does not flag them.
  const std::string prefix = "rdfmr_";
  EXPECT_FALSE(MetricsRegistry::IsValidMetricName(prefix + "map_micros"));
  // Wrong root.
  EXPECT_FALSE(MetricsRegistry::IsValidMetricName("foo_mr_map_micros"));
  // Unknown unit suffix.
  EXPECT_FALSE(
      MetricsRegistry::IsValidMetricName(prefix + "mr_map_widgets"));
  // Uppercase token.
  EXPECT_FALSE(MetricsRegistry::IsValidMetricName(prefix + "mr_Map_micros"));
  // Empty token (double underscore).
  EXPECT_FALSE(MetricsRegistry::IsValidMetricName(prefix + "mr__micros"));
  EXPECT_FALSE(MetricsRegistry::IsValidMetricName(""));
}

// ---- MetricsRegistry -------------------------------------------------------

TEST(MetricsRegistryTest, CounterGaugeHistogramRoundTrip) {
  MetricsRegistry::Global().ResetForTesting();
  MetricsRegistry& registry = MetricsRegistry::Global();

  Counter* counter =
      registry.GetCounter("rdfmr_test_requests_total", "Requests seen.");
  counter->Increment();
  counter->Increment(4);
  EXPECT_EQ(counter->Value(), 5u);
  // Get-or-create returns the same instance for the same name.
  EXPECT_EQ(registry.GetCounter("rdfmr_test_requests_total"), counter);

  Gauge* gauge = registry.GetGauge("rdfmr_test_depth_count", "Depth.");
  gauge->Set(7);
  gauge->Add(-3);
  EXPECT_EQ(gauge->Value(), 4);

  HistogramMetric* histogram =
      registry.GetHistogram("rdfmr_test_latency_micros", "Latency.");
  histogram->Observe(10);
  histogram->Observe(20);
  EXPECT_EQ(histogram->Snapshot().count(), 2u);
  EXPECT_EQ(histogram->Snapshot().sum(), 30u);
}

TEST(MetricsRegistryTest, PrometheusTextExport) {
  MetricsRegistry::Global().ResetForTesting();
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("rdfmr_test_requests_total", "Requests seen.")
      ->Increment(3);
  registry.GetGauge("rdfmr_test_depth_count", "Current depth.")->Set(-2);
  registry.GetHistogram("rdfmr_test_latency_micros", "Latency.")
      ->Observe(5);

  const std::string text = registry.ToPrometheusText();
  EXPECT_TRUE(
      Contains(text, "# HELP rdfmr_test_requests_total Requests seen.\n"));
  EXPECT_TRUE(Contains(text, "# TYPE rdfmr_test_requests_total counter\n"));
  EXPECT_TRUE(Contains(text, "rdfmr_test_requests_total 3\n"));
  EXPECT_TRUE(Contains(text, "# TYPE rdfmr_test_depth_count gauge\n"));
  EXPECT_TRUE(Contains(text, "rdfmr_test_depth_count -2\n"));
  EXPECT_TRUE(Contains(text, "# TYPE rdfmr_test_latency_micros histogram\n"));
  const std::string histogram_name = "rdfmr_test_latency_micros";
  EXPECT_TRUE(Contains(text, histogram_name + "_bucket{le=\"+Inf\"} 1\n"));
  EXPECT_TRUE(Contains(text, histogram_name + "_sum 5\n"));
  EXPECT_TRUE(Contains(text, histogram_name + "_count 1\n"));
}

TEST(MetricsRegistryTest, HelpTextIsEscaped) {
  MetricsRegistry::Global().ResetForTesting();
  MetricsRegistry::Global().GetCounter("rdfmr_test_weird_total",
                                       "line1\nline2 back\\slash");
  const std::string text = MetricsRegistry::Global().ToPrometheusText();
  EXPECT_TRUE(Contains(
      text, "# HELP rdfmr_test_weird_total line1\\nline2 back\\\\slash\n"));
}

TEST(MetricsRegistryTest, JsonExportParses) {
  MetricsRegistry::Global().ResetForTesting();
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("rdfmr_test_requests_total")->Increment(9);
  registry.GetGauge("rdfmr_test_depth_count")->Set(2);
  registry.GetHistogram("rdfmr_test_latency_micros")->Observe(42);

  auto json = ParseJson(registry.ToJson());
  ASSERT_TRUE(json.ok());
  EXPECT_EQ(json->GetUint("rdfmr_test_requests_total"), 9u);
  EXPECT_EQ(json->GetUint("rdfmr_test_depth_count"), 2u);
  ASSERT_TRUE(json->Has("rdfmr_test_latency_micros"));
  EXPECT_TRUE(json->Get("rdfmr_test_latency_micros").is_object());
  EXPECT_EQ(json->Get("rdfmr_test_latency_micros").GetUint("count"), 1u);
}

TEST(MetricsRegistryTest, ResetDropsAllMetrics) {
  MetricsRegistry::Global().ResetForTesting();
  MetricsRegistry::Global().GetCounter("rdfmr_test_requests_total");
  EXPECT_TRUE(Contains(MetricsRegistry::Global().ToPrometheusText(),
                       "rdfmr_test_requests_total"));
  MetricsRegistry::Global().ResetForTesting();
  EXPECT_FALSE(Contains(MetricsRegistry::Global().ToPrometheusText(),
                        "rdfmr_test_requests_total"));
}

// Concurrent updates through one shared counter/gauge/histogram: exact
// totals prove no lost updates; TSan (when enabled) checks the locking.
TEST(MetricsRegistryTest, ConcurrentUpdatesAreLossless) {
  MetricsRegistry::Global().ResetForTesting();
  MetricsRegistry& registry = MetricsRegistry::Global();
  constexpr int kThreads = 8;
  constexpr int kIterations = 5000;

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry] {
      // Get-or-create from every thread too: registration is part of the
      // concurrency contract, not just the updates.
      Counter* counter = registry.GetCounter("rdfmr_test_requests_total");
      Gauge* gauge = registry.GetGauge("rdfmr_test_depth_count");
      HistogramMetric* histogram =
          registry.GetHistogram("rdfmr_test_latency_micros");
      for (int i = 0; i < kIterations; ++i) {
        counter->Increment();
        gauge->Add(1);
        histogram->Observe(static_cast<uint64_t>(i % 17));
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  EXPECT_EQ(registry.GetCounter("rdfmr_test_requests_total")->Value(),
            static_cast<uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(registry.GetGauge("rdfmr_test_depth_count")->Value(),
            static_cast<int64_t>(kThreads) * kIterations);
  EXPECT_EQ(
      registry.GetHistogram("rdfmr_test_latency_micros")->Snapshot().count(),
      static_cast<uint64_t>(kThreads) * kIterations);
}

TEST(PrometheusEscapeTest, LabelAndHelpEscaping) {
  EXPECT_EQ(PrometheusEscape("plain"), "plain");
  EXPECT_EQ(PrometheusEscape("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
  // HELP text escapes backslash and newline but NOT double quotes.
  EXPECT_EQ(PrometheusEscapeHelp("a\\b\"c\nd"), "a\\\\b\"c\\nd");
}

TEST(PrometheusHistogramTest, CumulativeBucketsSumAndCount) {
  Histogram h;
  for (uint64_t v : {0ull, 1ull, 5ull, 100ull}) h.Add(v);
  std::string out;
  AppendPrometheusHistogram("rdfmr_test_latency_micros", h, &out);
  const std::string name = "rdfmr_test_latency_micros";
  // Buckets are cumulative with power-of-two upper bounds: 0 lands in
  // le="0", 1 in le="1", 5 in le="7", 100 in le="127".
  EXPECT_TRUE(Contains(out, name + "_bucket{le=\"0\"} 1\n"));
  EXPECT_TRUE(Contains(out, name + "_bucket{le=\"1\"} 2\n"));
  EXPECT_TRUE(Contains(out, name + "_bucket{le=\"7\"} 3\n"));
  EXPECT_TRUE(Contains(out, name + "_bucket{le=\"127\"} 4\n"));
  EXPECT_TRUE(Contains(out, name + "_bucket{le=\"+Inf\"} 4\n"));
  EXPECT_TRUE(Contains(out, name + "_sum 106\n"));
  EXPECT_TRUE(Contains(out, name + "_count 4\n"));
}

TEST(PrometheusHistogramTest, EmptyHistogramHasOnlyInfBucket) {
  Histogram h;
  std::string out;
  AppendPrometheusHistogram("rdfmr_test_latency_micros", h, &out);
  EXPECT_EQ(out,
            "rdfmr_test_latency_micros_bucket{le=\"+Inf\"} 0\n"
            "rdfmr_test_latency_micros_sum 0\n"
            "rdfmr_test_latency_micros_count 0\n");
}

TEST(OperatorMetricsGateTest, DefaultsOffAndToggles) {
  EXPECT_FALSE(OperatorMetricsEnabled());
  EnableOperatorMetrics(true);
  EXPECT_TRUE(OperatorMetricsEnabled());
  EnableOperatorMetrics(false);
  EXPECT_FALSE(OperatorMetricsEnabled());
}

// ---- Span tracing ----------------------------------------------------------

TEST(TraceTest, DisabledContextIsInert) {
  RunContext disabled;
  EXPECT_FALSE(disabled.enabled());
  ScopedSpan span(disabled, "query");
  EXPECT_FALSE(span.enabled());
  span.Attr("key", "value");  // all no-ops
  span.Attr("n", uint64_t{7});
  EXPECT_FALSE(span.context().enabled());
}

TEST(TraceTest, BuildsNestedTreeWithOrderedAttrs) {
  Trace trace;
  RunContext ctx = RunContext::ForTrace(&trace);
  ASSERT_TRUE(ctx.enabled());
  {
    ScopedSpan query(ctx, "query");
    query.Attr("engine", "LazyUnnest");
    query.Attr("planned_cycles", uint64_t{2});
    {
      ScopedSpan cycle(query.context(), "mr_cycle");
      cycle.Attr("cycle", uint64_t{1});
    }
    {
      ScopedSpan cycle(query.context(), "mr_cycle");
      cycle.Attr("cycle", uint64_t{2});
    }
  }
  const TraceSpan& root = *trace.root();
  EXPECT_EQ(root.name, "trace");
  ASSERT_EQ(root.children.size(), 1u);
  const TraceSpan& query = *root.children[0];
  EXPECT_EQ(query.name, "query");
  ASSERT_EQ(query.attrs.size(), 2u);
  EXPECT_EQ(query.attrs[0].first, "engine");
  EXPECT_EQ(query.attrs[0].second, "LazyUnnest");
  EXPECT_EQ(query.attrs[1].first, "planned_cycles");
  EXPECT_EQ(query.attrs[1].second, "2");
  ASSERT_EQ(query.children.size(), 2u);
  EXPECT_EQ(query.children[0]->name, "mr_cycle");
  EXPECT_EQ(query.children[1]->name, "mr_cycle");
  // Closed spans have their duration stamped (zero is possible on a
  // coarse clock, negative is not).
  EXPECT_GE(query.duration_micros, 0);
}

TEST(TraceTest, ChromeJsonAndCanonicalJson) {
  Trace trace;
  RunContext ctx = RunContext::ForTrace(&trace);
  {
    ScopedSpan span(ctx, "query");
    span.Attr("status", "ok");
  }
  const std::string chrome = trace.ToChromeJson();
  EXPECT_TRUE(Contains(chrome, "\"traceEvents\""));
  EXPECT_TRUE(Contains(chrome, "\"ph\":\"X\""));
  EXPECT_TRUE(Contains(chrome, "\"ts\":"));
  EXPECT_TRUE(Contains(chrome, "\"dur\":"));
  EXPECT_TRUE(Contains(chrome, "\"name\":\"query\""));
  EXPECT_TRUE(Contains(chrome, "\"status\":\"ok\""));

  const std::string canonical = trace.ToCanonicalJson();
  EXPECT_FALSE(Contains(canonical, "\"ts\":"));
  EXPECT_FALSE(Contains(canonical, "\"dur\":"));
  EXPECT_TRUE(Contains(canonical, "\"name\":\"query\""));

  auto parsed = ParseJson(chrome);
  EXPECT_TRUE(parsed.ok());
}

// ---- Golden span tree ------------------------------------------------------

// The core tracing contract: span structure and every non-time attribute
// are byte-identical across thread counts. Runs the same unbound-property
// query at 1 and 4 host threads and byte-compares the canonical traces.
TEST(GoldenSpanTreeTest, CanonicalTraceIdenticalAcrossThreadCounts) {
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  auto query = GetTestbedQuery("B1");
  ASSERT_TRUE(query.ok());

  std::string golden;
  SolutionSet golden_answers;
  for (uint32_t threads : {1u, 4u}) {
    auto dfs = MakeDfsWithBase(triples);
    ASSERT_NE(dfs, nullptr);
    EngineOptions options;
    options.kind = EngineKind::kNtgaLazy;
    // Pin so ambient RDFMR_THREADS cannot override the sweep.
    options.runtime.num_threads = threads;
    options.runtime.cli_pinned = true;

    Trace trace;
    auto exec = RunQuery(dfs.get(), "base", *query, options,
                         RunContext::ForTrace(&trace));
    ASSERT_TRUE(exec.ok());
    ASSERT_TRUE(exec->stats.ok());

    const std::string canonical = trace.ToCanonicalJson();
    // Span taxonomy: query -> mr_cycle -> job -> phases -> operators.
    EXPECT_TRUE(Contains(canonical, "\"name\":\"query\""));
    EXPECT_TRUE(Contains(canonical, "\"name\":\"mr_cycle\""));
    EXPECT_TRUE(Contains(canonical, "\"name\":\"job\""));
    EXPECT_TRUE(Contains(canonical, "\"name\":\"map\""));
    EXPECT_TRUE(Contains(canonical, "\"name\":\"reduce\""));
    EXPECT_TRUE(Contains(canonical, "\"name\":\"write\""));
    // B1 has an unbound property pattern, so the grouping cycle runs the
    // σ^βγ operator and its span carries the deterministic cardinalities.
    EXPECT_TRUE(Contains(canonical, "\"name\":\"sigma_beta_gamma\""));

    if (golden.empty()) {
      golden = canonical;
      golden_answers = exec->answers;
    } else {
      EXPECT_EQ(canonical, golden);
      EXPECT_EQ(exec->answers, golden_answers);
    }
  }
}

TEST(GoldenSpanTreeTest, DisabledContextStillRunsAndAnswersMatch) {
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  auto query = GetTestbedQuery("B1");
  ASSERT_TRUE(query.ok());

  auto traced_dfs = MakeDfsWithBase(triples);
  auto plain_dfs = MakeDfsWithBase(triples);
  ASSERT_NE(traced_dfs, nullptr);
  ASSERT_NE(plain_dfs, nullptr);
  EngineOptions options;
  options.kind = EngineKind::kNtgaLazy;

  Trace trace;
  auto traced = RunQuery(traced_dfs.get(), "base", *query, options,
                         RunContext::ForTrace(&trace));
  auto plain = RunQuery(plain_dfs.get(), "base", *query, options);
  ASSERT_TRUE(traced.ok());
  ASSERT_TRUE(plain.ok());
  // Tracing observes the run without perturbing it.
  EXPECT_EQ(traced->answers, plain->answers);
  EXPECT_EQ(traced->stats.counters, plain->stats.counters);
  EXPECT_FALSE(trace.root()->children.empty());
}

// ---- RuntimeOptions precedence ---------------------------------------------

TEST(RuntimeOptionsTest, PrecedenceCliEnvOptionConfig) {
  EnvVarGuard threads_guard("RDFMR_THREADS");
  EnvVarGuard attempts_guard("RDFMR_MAX_ATTEMPTS");

  // Config default when everything is unset.
  EXPECT_EQ(ResolveNumThreads(RuntimeOptions{}, 6), 6u);
  EXPECT_EQ(ResolveMaxAttempts(RuntimeOptions{}, 3), 3u);

  // Programmatic option beats the config default.
  RuntimeOptions options;
  options.num_threads = 2;
  options.max_attempts = 5;
  EXPECT_EQ(ResolveNumThreads(options, 6), 2u);
  EXPECT_EQ(ResolveMaxAttempts(options, 3), 5u);

  // Environment beats the programmatic option.
  ::setenv("RDFMR_THREADS", "7", 1);
  ::setenv("RDFMR_MAX_ATTEMPTS", "9", 1);
  EXPECT_EQ(ResolveNumThreads(options, 6), 7u);
  EXPECT_EQ(ResolveMaxAttempts(options, 3), 9u);

  // A CLI-pinned option beats the environment.
  options.cli_pinned = true;
  EXPECT_EQ(ResolveNumThreads(options, 6), 2u);
  EXPECT_EQ(ResolveMaxAttempts(options, 3), 5u);

  // cli_pinned with an unset field still falls through to env.
  RuntimeOptions pinned_unset;
  pinned_unset.cli_pinned = true;
  EXPECT_EQ(ResolveNumThreads(pinned_unset, 6), 7u);
}

TEST(RuntimeOptionsTest, EnvParsingIgnoresGarbage) {
  EnvVarGuard guard("RDFMR_THREADS");
  EXPECT_EQ(EnvRuntimeValue("RDFMR_THREADS"), 0u);
  ::setenv("RDFMR_THREADS", "", 1);
  EXPECT_EQ(EnvRuntimeValue("RDFMR_THREADS"), 0u);
  ::setenv("RDFMR_THREADS", "abc", 1);
  EXPECT_EQ(EnvRuntimeValue("RDFMR_THREADS"), 0u);
  ::setenv("RDFMR_THREADS", "0", 1);
  EXPECT_EQ(EnvRuntimeValue("RDFMR_THREADS"), 0u);
  ::setenv("RDFMR_THREADS", "-4", 1);
  EXPECT_EQ(EnvRuntimeValue("RDFMR_THREADS"), 0u);
  ::setenv("RDFMR_THREADS", "12", 1);
  EXPECT_EQ(EnvRuntimeValue("RDFMR_THREADS"), 12u);
}

// Deliberately exercises the [[deprecated]] alias fields — this test IS the
// coverage for the legacy fold, so the deprecation warnings are suppressed
// here and nowhere else.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(RuntimeOptionsTest, EffectiveRuntimeFoldsDeprecatedAliases) {
  // Legacy aliases fill unset RuntimeOptions fields...
  EngineOptions legacy;
  legacy.num_threads = 3;
  legacy.max_attempts = 4;
  RuntimeOptions folded = EffectiveRuntime(legacy);
  EXPECT_EQ(folded.num_threads, 3u);
  EXPECT_EQ(folded.max_attempts, 4u);

  // ...but never override explicitly-set ones.
  EngineOptions both;
  both.num_threads = 3;
  both.runtime.num_threads = 8;
  EXPECT_EQ(EffectiveRuntime(both).num_threads, 8u);
}
#pragma GCC diagnostic pop

// ---- Versioned NDJSON protocol ---------------------------------------------

std::unique_ptr<service::QueryService> MakeService() {
  service::ServiceConfig config;
  config.cluster = RoomyCluster();
  config.max_concurrent = 2;
  return std::make_unique<service::QueryService>(config);
}

TEST(ProtocolVersionTest, EveryResponseCarriesVersion) {
  auto svc = MakeService();
  auto result =
      service::HandleRequestLine(svc.get(), R"({"verb":"ping","id":"p1"})");
  EXPECT_TRUE(result.response.GetBool("ok"));
  EXPECT_EQ(result.response.GetUint("v"), service::kProtocolVersion);
  EXPECT_EQ(result.response.GetString("id"), "p1");
}

TEST(ProtocolVersionTest, ExplicitCurrentVersionAccepted) {
  auto svc = MakeService();
  auto result =
      service::HandleRequestLine(svc.get(), R"({"verb":"ping","v":1})");
  EXPECT_TRUE(result.response.GetBool("ok"));
  EXPECT_EQ(result.response.GetUint("v"), 1u);
}

TEST(ProtocolVersionTest, UnknownMajorRejectedWithStructuredError) {
  auto svc = MakeService();
  auto result = service::HandleRequestLine(
      svc.get(), R"({"verb":"ping","v":2,"id":"r7"})");
  EXPECT_FALSE(result.response.GetBool("ok"));
  EXPECT_EQ(result.response.GetString("code"), "InvalidArgument");
  EXPECT_TRUE(Contains(result.response.GetString("error"),
                       "protocol version"));
  // The rejection itself still speaks version 1 and echoes the id.
  EXPECT_EQ(result.response.GetUint("v"), 1u);
  EXPECT_EQ(result.response.GetString("id"), "r7");
  EXPECT_FALSE(result.shutdown);
}

TEST(ProtocolVersionTest, NonNumericVersionRejected) {
  auto svc = MakeService();
  auto result =
      service::HandleRequestLine(svc.get(), R"({"verb":"ping","v":"1"})");
  EXPECT_FALSE(result.response.GetBool("ok"));
  EXPECT_EQ(result.response.GetString("code"), "InvalidArgument");
}

TEST(ProtocolVersionTest, ParseErrorResponseCarriesVersion) {
  auto svc = MakeService();
  auto result = service::HandleRequestLine(svc.get(), "{not json");
  EXPECT_FALSE(result.response.GetBool("ok"));
  EXPECT_EQ(result.response.GetUint("v"), service::kProtocolVersion);
}

TEST(ProtocolMetricsTest, StatsSupportsPrometheusFormat) {
  auto svc = MakeService();
  auto json_result =
      service::HandleRequestLine(svc.get(), R"({"verb":"stats"})");
  EXPECT_TRUE(json_result.response.GetBool("ok"));
  EXPECT_TRUE(json_result.response.Has("stats"));

  auto prom_result = service::HandleRequestLine(
      svc.get(), R"({"verb":"stats","format":"prometheus"})");
  EXPECT_TRUE(prom_result.response.GetBool("ok"));
  const std::string text = prom_result.response.GetString("prometheus");
  EXPECT_TRUE(Contains(text, "rdfmr_service_submitted_total"));
  EXPECT_TRUE(Contains(text, "rdfmr_service_exec_micros"));

  auto bad = service::HandleRequestLine(
      svc.get(), R"({"verb":"stats","format":"xml"})");
  EXPECT_FALSE(bad.response.GetBool("ok"));
}

TEST(ProtocolMetricsTest, MetricsVerbExportsRegistryAndService) {
  MetricsRegistry::Global().ResetForTesting();
  MetricsRegistry::Global()
      .GetCounter("rdfmr_test_requests_total", "From the test.")
      ->Increment(3);

  auto svc = MakeService();
  auto prom = service::HandleRequestLine(svc.get(), R"({"verb":"metrics"})");
  EXPECT_TRUE(prom.response.GetBool("ok"));
  const std::string text = prom.response.GetString("prometheus");
  EXPECT_TRUE(Contains(text, "rdfmr_test_requests_total 3\n"));
  EXPECT_TRUE(Contains(text, "rdfmr_service_submitted_total"));

  auto json = service::HandleRequestLine(
      svc.get(), R"({"verb":"metrics","format":"json"})");
  EXPECT_TRUE(json.response.GetBool("ok"));
  ASSERT_TRUE(json.response.Has("metrics"));
  EXPECT_TRUE(json.response.Get("metrics").is_object());
  EXPECT_EQ(json.response.Get("metrics").GetUint("rdfmr_test_requests_total"),
            3u);
  EXPECT_TRUE(json.response.Has("stats"));
  MetricsRegistry::Global().ResetForTesting();
}

TEST(ProtocolMetricsTest, UnknownVerbListsMetricsVerb) {
  auto svc = MakeService();
  auto result =
      service::HandleRequestLine(svc.get(), R"({"verb":"bogus"})");
  EXPECT_FALSE(result.response.GetBool("ok"));
  EXPECT_TRUE(Contains(result.response.GetString("error"), "metrics"));
}

}  // namespace
}  // namespace rdfmr
