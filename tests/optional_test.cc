// Tests for OPTIONAL pattern support (SPARQL left joins, star-local): the
// matcher semantics, parser syntax, query validation, NTGA expansion, and
// cross-engine answer equivalence — including OPTIONAL combined with
// unbound properties.

#include <gtest/gtest.h>

#include "query/matcher.h"
#include "query/sparql_parser.h"
#include "tests/test_util.h"

namespace rdfmr {
namespace {

using testing_util::AllEngineKinds;
using testing_util::MakeDfsWithBase;
using testing_util::SmallDataset;

// ---- Matcher semantics -----------------------------------------------------------

StarPattern StarWithOptional() {
  StarPattern star;
  star.subject_var = "g";
  star.patterns.push_back(TriplePattern::Bound(
      NodePattern::Var("g"), "label", NodePattern::Var("l")));
  TriplePattern opt = TriplePattern::Bound(
      NodePattern::Var("g"), "synonym", NodePattern::Var("syn"));
  opt.optional = true;
  star.patterns.push_back(opt);
  return star;
}

TEST(OptionalMatcherTest, ExtendsWhenPresent) {
  std::vector<Triple> triples = {
      {"g1", "label", "a"}, {"g1", "synonym", "s1"}, {"g1", "synonym", "s2"},
  };
  std::vector<Solution> solutions =
      MatchStar(StarWithOptional(), triples);
  ASSERT_EQ(solutions.size(), 2u) << "one per synonym";
  for (const Solution& s : solutions) {
    EXPECT_TRUE(s.Has("syn"));
  }
}

TEST(OptionalMatcherTest, KeepsSolutionWhenAbsent) {
  std::vector<Triple> triples = {{"g1", "label", "a"}};
  std::vector<Solution> solutions =
      MatchStar(StarWithOptional(), triples);
  ASSERT_EQ(solutions.size(), 1u);
  EXPECT_EQ(*solutions[0].Get("l"), "a");
  EXPECT_FALSE(solutions[0].Has("syn"))
      << "the optional variable stays unbound";
}

TEST(OptionalMatcherTest, MandatoryStillRequired) {
  std::vector<Triple> triples = {{"g1", "synonym", "s1"}};
  EXPECT_TRUE(MatchStar(StarWithOptional(), triples).empty())
      << "OPTIONAL does not waive the mandatory label pattern";
}

TEST(OptionalMatcherTest, MatchedTriplesAlignWithPlaceholders) {
  std::vector<Triple> triples = {{"g1", "label", "a"}};
  std::vector<StarMatch> matches =
      MatchStarDetailed(StarWithOptional(), triples);
  ASSERT_EQ(matches.size(), 1u);
  ASSERT_EQ(matches[0].matched.size(), 2u);
  EXPECT_EQ(matches[0].matched[0].property, "label");
  EXPECT_TRUE(matches[0].matched[1].subject.empty())
      << "unmatched optional positions carry the null placeholder";
}

TEST(OptionalMatcherTest, OptionalUnboundPattern) {
  StarPattern star;
  star.subject_var = "g";
  star.patterns.push_back(TriplePattern::Bound(
      NodePattern::Var("g"), "label", NodePattern::Var("l")));
  TriplePattern opt = TriplePattern::Unbound(
      NodePattern::Var("g"), "up", NodePattern::Var("x", "go_"));
  opt.optional = true;
  star.patterns.push_back(opt);

  std::vector<Triple> with = {
      {"g1", "label", "a"}, {"g1", "xGO", "go_1"}, {"g1", "xGO", "go_2"}};
  EXPECT_EQ(MatchStar(star, with).size(), 2u);
  std::vector<Triple> without = {{"g1", "label", "a"},
                                 {"g1", "xRef", "ref_1"}};
  std::vector<Solution> kept = MatchStar(star, without);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_FALSE(kept[0].Has("up"));
}

// ---- Parser and validation ----------------------------------------------------------

TEST(OptionalParseTest, BasicSyntax) {
  auto q = ParseSparql("opt", R"(SELECT * WHERE {
    ?g <label> ?l .
    OPTIONAL { ?g <synonym> ?syn . }
  })");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->stars()[0].patterns.size(), 2u);
  EXPECT_FALSE(q->stars()[0].patterns[0].optional);
  EXPECT_TRUE(q->stars()[0].patterns[1].optional);
  EXPECT_EQ(q->stars()[0].OptionalIndexes(), (std::vector<size_t>{1}));
  EXPECT_EQ(q->stars()[0].BoundProperties(),
            (std::set<std::string>{"label"}));
  EXPECT_EQ(q->stars()[0].AllBoundProperties(),
            (std::set<std::string>{"label", "synonym"}));
}

TEST(OptionalParseTest, OptionalUnboundWithFilter) {
  auto q = ParseSparql("opt", R"(SELECT * WHERE {
    ?g <label> ?l .
    OPTIONAL { ?g ?up ?x }
    FILTER(CONTAINS(STR(?x), "go_"))
  })");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const TriplePattern& tp = q->stars()[0].patterns[1];
  EXPECT_TRUE(tp.optional);
  EXPECT_FALSE(tp.property_bound);
  EXPECT_EQ(tp.object.contains_filter, "go_");
}

TEST(OptionalParseTest, MultiTripleGroupRejected) {
  auto q = ParseSparql("opt", R"(SELECT * WHERE {
    ?g <label> ?l .
    OPTIONAL { ?g <a> ?x . ?g <b> ?y . }
  })");
  EXPECT_EQ(q.status().code(), StatusCode::kNotImplemented);
}

TEST(OptionalValidationTest, SharedVariableRejected) {
  auto q = ParseSparql("opt", R"(SELECT * WHERE {
    ?g <label> ?l .
    OPTIONAL { ?g <synonym> ?l }
  })");
  EXPECT_EQ(q.status().code(), StatusCode::kNotImplemented)
      << "optional variables must be fresh";
}

TEST(OptionalValidationTest, OptionalOnlyStarRejected) {
  auto q = ParseSparql("opt", R"(SELECT * WHERE {
    ?g <product> ?p .
    OPTIONAL { ?p <label> ?l }
  })");
  // The ?p star consists solely of an optional pattern.
  EXPECT_TRUE(q.status().IsInvalidArgument()) << q.status().ToString();
}

// ---- Cross-engine equivalence ---------------------------------------------------------

struct OptCase {
  std::string name;
  DatasetFamily dataset;
  std::string sparql;
};

const std::vector<OptCase>& OptionalQueries() {
  static const std::vector<OptCase> kQueries = {
      {"single_star_opt", DatasetFamily::kBio2Rdf,
       R"(SELECT * WHERE {
            ?g <label> ?l . ?g <xTaxon> ?t .
            OPTIONAL { ?g <synonym> ?syn }
          })"},
      {"opt_unbound", DatasetFamily::kBio2Rdf,
       R"(SELECT * WHERE {
            ?g <label> ?l . ?g <xTaxon> ?t .
            OPTIONAL { ?g ?up ?x }
            FILTER(CONTAINS(STR(?x), "pmid_"))
          })"},
      {"two_star_opt", DatasetFamily::kBsbm,
       R"(SELECT * WHERE {
            ?p <label> ?l . ?p ?up ?f .
            FILTER(CONTAINS(STR(?f), "feature"))
            OPTIONAL { ?p <propertyTex1> ?tex }
            FILTER(CONTAINS(STR(?tex), "token1"))
            ?o <product> ?p . ?o <price> ?pr .
            OPTIONAL { ?o <deliveryDays> ?d }
            FILTER(CONTAINS(STR(?d), "days_1"))
          })"},
      {"opt_on_joined_star", DatasetFamily::kDbpedia,
       R"(SELECT * WHERE {
            ?s <type> <Scientist> . ?s ?up ?x .
            ?x <type> <City> .
            OPTIONAL { ?x <population> ?pop }
            FILTER(CONTAINS(STR(?pop), "pop_1"))
          })"},
  };
  return kQueries;
}

struct OptEngineCase {
  OptCase query;
  EngineKind engine;
};

std::string OptCaseName(const ::testing::TestParamInfo<OptEngineCase>& info) {
  std::string name =
      info.param.query.name + "_" + EngineKindToString(info.param.engine);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

class OptionalEngineTest : public ::testing::TestWithParam<OptEngineCase> {};

TEST_P(OptionalEngineTest, MatchesOracle) {
  const OptEngineCase& param = GetParam();
  auto parsed = ParseSparql(param.query.name, param.query.sparql);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto query =
      std::make_shared<const GraphPatternQuery>(parsed.MoveValueUnsafe());
  std::vector<Triple> triples = SmallDataset(param.query.dataset);
  SolutionSet oracle = EvaluateQueryInMemory(*query, triples);
  ASSERT_FALSE(oracle.empty());
  // The left join must actually exercise both branches somewhere.
  bool some_bound = false, some_unbound = false;
  std::vector<size_t> optional_sizes;
  for (const Solution& s : oracle) {
    size_t vars = s.size();
    optional_sizes.push_back(vars);
  }
  std::sort(optional_sizes.begin(), optional_sizes.end());
  some_unbound = optional_sizes.front() < optional_sizes.back();
  some_bound = true;
  EXPECT_TRUE(some_bound && some_unbound)
      << param.query.name
      << ": dataset must produce both extended and unextended solutions "
         "for the test to be meaningful";

  auto dfs = MakeDfsWithBase(triples);
  ASSERT_NE(dfs, nullptr);
  EngineOptions options;
  options.kind = param.engine;
  options.phi_partitions = 16;
  auto exec = RunQuery(dfs.get(), "base", query, options);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  ASSERT_TRUE(exec->stats.ok()) << exec->stats.status.ToString();
  EXPECT_TRUE(exec->answers == oracle)
      << param.query.name << " on " << EngineKindToString(param.engine)
      << ": got " << exec->answers.size() << ", oracle " << oracle.size();
}

std::vector<OptEngineCase> OptCases() {
  std::vector<OptEngineCase> cases;
  for (const OptCase& q : OptionalQueries()) {
    for (EngineKind kind : AllEngineKinds()) {
      cases.push_back(OptEngineCase{q, kind});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Queries, OptionalEngineTest,
                         ::testing::ValuesIn(OptCases()), OptCaseName);

}  // namespace
}  // namespace rdfmr
