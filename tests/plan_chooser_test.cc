// Tests for the cost-based plan chooser behind engine=auto (ranking on
// the testbed catalog, the fitting filter, decision recording) and for
// the unified Exec entry point (the four legacy entry points must be
// byte-identical thin wrappers).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/plan_chooser.h"
#include "query/aggregate.h"
#include "query/sparql_parser.h"
#include "rdf/graph_stats.h"
#include "testing/invariants.h"
#include "tests/test_util.h"

namespace rdfmr {
namespace {

using testing_util::MakeDfsWithBase;
using testing_util::RoomyCluster;
using testing_util::SmallDataset;

ExecRequest SingleRequest(const std::string& query_id) {
  auto query = GetTestbedQuery(query_id);
  EXPECT_TRUE(query.ok());
  ExecRequest request;
  request.payload = ExecPayload::kSingle;
  request.query = *query;
  return request;
}

PlanChoice ChoiceFor(const std::string& query_id,
                     const std::vector<Triple>& triples,
                     ClusterConfig cluster = RoomyCluster()) {
  GraphStats stats = GraphStats::Compute(triples);
  const uint64_t base_bytes = SerializeTriples(triples).size();
  EngineOptions options;
  options.kind = EngineKind::kAuto;
  auto choice = ChoosePlan(SingleRequest(query_id), stats, base_bytes,
                           base_bytes, cluster, options);
  EXPECT_TRUE(choice.ok()) << choice.status().ToString();
  return choice.ok() ? *choice : PlanChoice{};
}

const PlanCandidate& CandidateFor(const PlanChoice& choice,
                                  EngineKind kind) {
  for (const PlanCandidate& candidate : choice.candidates) {
    if (candidate.kind == kind) return candidate;
  }
  static PlanCandidate missing;
  ADD_FAILURE() << "no candidate for " << EngineKindToString(kind);
  return missing;
}

bool IsLazyFamily(EngineKind kind) {
  return kind == EngineKind::kNtgaLazy ||
         kind == EngineKind::kNtgaLazyFull ||
         kind == EngineKind::kNtgaLazyPartial;
}

// ---- Ranking on the testbed catalog ---------------------------------------

TEST(PlanChooserTest, UnboundPropertyStarPrefersLazyOverEager) {
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  for (const std::string q : {"B1", "B3"}) {
    PlanChoice choice = ChoiceFor(q, triples);
    EXPECT_TRUE(IsLazyFamily(choice.kind))
        << q << " chose " << EngineKindToString(choice.kind);
    const PlanCandidate& lazy =
        CandidateFor(choice, EngineKind::kNtgaLazy);
    const PlanCandidate& eager =
        CandidateFor(choice, EngineKind::kNtgaEager);
    const PlanCandidate& hive = CandidateFor(choice, EngineKind::kHive);
    EXPECT_LE(lazy.modeled_seconds, eager.modeled_seconds) << q;
    EXPECT_LE(lazy.modeled_seconds, hive.modeled_seconds) << q;
    // The unbound star's relational intermediate dwarfs the nested one.
    EXPECT_LT(lazy.star_bytes, hive.star_bytes) << q;
  }
}

TEST(PlanChooserTest, BoundOnlyStarKeepsRelationalCompetitive) {
  // A small, selective, bound-property-only star: the relational engines'
  // modeled cost must be within striking distance of (or beat) the best
  // candidate — nothing in such a query pays the NTGA grouping cycle off.
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kDbpedia);
  PlanChoice choice = ChoiceFor("C2", triples);
  const PlanCandidate* chosen = nullptr;
  for (const PlanCandidate& candidate : choice.candidates) {
    if (candidate.chosen) chosen = &candidate;
  }
  ASSERT_NE(chosen, nullptr);
  const PlanCandidate& hive = CandidateFor(choice, EngineKind::kHive);
  EXPECT_LE(hive.modeled_seconds, chosen->modeled_seconds * 1.25)
      << "relational should stay competitive on a bound-only star";
}

TEST(PlanChooserTest, NeverChoosesNonFittingWhileAFittingExists) {
  // Shrink the cluster until some candidates stop fitting; as long as at
  // least one candidate fits, the chosen one must be among the fitters.
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  ClusterConfig cluster = RoomyCluster();
  for (uint64_t disk = 64ULL << 20; disk >= 16ULL << 10; disk /= 2) {
    cluster.disk_per_node = disk;
    cluster.block_size = disk / 64 + 1;
    GraphStats stats = GraphStats::Compute(triples);
    const uint64_t base_bytes = SerializeTriples(triples).size();
    EngineOptions options;
    options.kind = EngineKind::kAuto;
    auto choice = ChoosePlan(SingleRequest("B3"), stats, base_bytes,
                             base_bytes, cluster, options);
    ASSERT_TRUE(choice.ok()) << choice.status().ToString();
    bool any_fits = false;
    bool chosen_fits = false;
    for (const PlanCandidate& candidate : choice->candidates) {
      if (candidate.feasible && candidate.fits) any_fits = true;
      if (candidate.chosen) chosen_fits = candidate.fits;
    }
    if (any_fits) {
      EXPECT_TRUE(chosen_fits)
          << "disk " << disk << ": chose a non-fitting plan over a "
          << "fitting candidate";
    }
  }
}

TEST(PlanChooserTest, TableScoresEveryEngineAndMarksExactlyOneChosen) {
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  PlanChoice choice = ChoiceFor("B1", triples);
  EXPECT_EQ(choice.candidates.size(), 6u);
  size_t chosen = 0;
  for (const PlanCandidate& candidate : choice.candidates) {
    if (candidate.chosen) ++chosen;
    EXPECT_TRUE(candidate.feasible);
    EXPECT_GT(candidate.modeled_seconds, 0.0);
    EXPECT_GT(candidate.planned_cycles, 0u);
  }
  EXPECT_EQ(chosen, 1u);
  EXPECT_FALSE(choice.rationale.empty());
  const std::string table = RenderPlanChoice(choice);
  EXPECT_NE(table.find("<=="), std::string::npos);
  EXPECT_NE(table.find(EngineKindToString(choice.kind)),
            std::string::npos);
}

TEST(PlanChooserTest, DeterministicAcrossCalls) {
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBio2Rdf);
  PlanChoice a = ChoiceFor("A1", triples);
  PlanChoice b = ChoiceFor("A1", triples);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.rationale, b.rationale);
  EXPECT_EQ(RenderPlanChoice(a), RenderPlanChoice(b));
}

// ---- engine=auto through Exec ---------------------------------------------

TEST(PlanChooserTest, AutoRunMatchesChosenEngineByteForByte) {
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  ExecRequest request = SingleRequest("B1");

  EngineOptions auto_options;
  auto_options.kind = EngineKind::kAuto;
  auto auto_dfs = MakeDfsWithBase(triples);
  ASSERT_NE(auto_dfs, nullptr);
  auto auto_exec = Exec(auto_dfs.get(), "base", request, auto_options);
  ASSERT_TRUE(auto_exec.ok()) << auto_exec.status().ToString();
  ASSERT_TRUE(auto_exec->stats.ok());
  ASSERT_FALSE(auto_exec->stats.chosen_engine.empty());
  EXPECT_EQ(auto_exec->stats.chosen_engine, auto_exec->stats.engine);
  EXPECT_EQ(auto_exec->stats.plan_candidates.size(), 6u);
  EXPECT_FALSE(auto_exec->stats.plan_rationale.empty());

  // Re-run the chosen engine explicitly on a fresh DFS.
  EngineKind chosen = EngineKind::kAuto;
  for (const PlanCandidate& candidate : auto_exec->stats.plan_candidates) {
    if (candidate.chosen) chosen = candidate.kind;
  }
  ASSERT_NE(chosen, EngineKind::kAuto);
  EngineOptions explicit_options;
  explicit_options.kind = chosen;
  auto explicit_dfs = MakeDfsWithBase(triples);
  ASSERT_NE(explicit_dfs, nullptr);
  auto explicit_exec =
      Exec(explicit_dfs.get(), "base", request, explicit_options);
  ASSERT_TRUE(explicit_exec.ok());
  ASSERT_TRUE(explicit_exec->stats.ok());
  EXPECT_TRUE(explicit_exec->stats.chosen_engine.empty())
      << "explicit runs must not carry chooser annotations";
  EXPECT_EQ(auto_exec->answers, explicit_exec->answers);
  EXPECT_TRUE(fuzz::CompareStatsIgnoringWallTimes(auto_exec->stats,
                                                  explicit_exec->stats)
                  .empty());
}

TEST(PlanChooserTest, AutoUsesCallerProvidedStatsWithoutScanning) {
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  ExecRequest request = SingleRequest("B1");
  request.stats =
      std::make_shared<const GraphStats>(GraphStats::Compute(triples));
  EngineOptions options;
  options.kind = EngineKind::kAuto;
  auto with_catalog_dfs = MakeDfsWithBase(triples);
  auto scan_dfs = MakeDfsWithBase(triples);
  ASSERT_NE(with_catalog_dfs, nullptr);
  ASSERT_NE(scan_dfs, nullptr);
  auto with_catalog =
      Exec(with_catalog_dfs.get(), "base", request, options);
  ExecRequest no_catalog = request;
  no_catalog.stats = nullptr;
  auto scanned = Exec(scan_dfs.get(), "base", no_catalog, options);
  ASSERT_TRUE(with_catalog.ok() && scanned.ok());
  // Same catalog content either way => same choice, same run.
  EXPECT_EQ(with_catalog->stats.chosen_engine,
            scanned->stats.chosen_engine);
  EXPECT_EQ(with_catalog->answers, scanned->answers);
  EXPECT_TRUE(fuzz::CompareStatsIgnoringWallTimes(with_catalog->stats,
                                                  scanned->stats)
                  .empty());
}

// ---- Legacy entry points are byte-identical Exec wrappers -----------------

void ExpectStatsIdentical(const ExecStats& a, const ExecStats& b) {
  std::vector<std::string> diffs =
      fuzz::CompareStatsIgnoringWallTimes(a, b);
  EXPECT_TRUE(diffs.empty()) << "stats diverge: " << diffs.front();
}

TEST(ExecRequestTest, RunQueryIsAThinWrapperOverExec) {
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  auto query = GetTestbedQuery("B1");
  ASSERT_TRUE(query.ok());
  EngineOptions options;
  options.kind = EngineKind::kNtgaLazy;

  auto legacy_dfs = MakeDfsWithBase(triples);
  auto unified_dfs = MakeDfsWithBase(triples);
  ASSERT_NE(legacy_dfs, nullptr);
  ASSERT_NE(unified_dfs, nullptr);
  auto legacy = RunQuery(legacy_dfs.get(), "base", *query, options);
  ExecRequest request;
  request.payload = ExecPayload::kSingle;
  request.query = *query;
  auto unified = Exec(unified_dfs.get(), "base", request, options);
  ASSERT_TRUE(legacy.ok() && unified.ok());
  EXPECT_EQ(legacy->answers, unified->answers);
  ExpectStatsIdentical(legacy->stats, unified->stats);
}

TEST(ExecRequestTest, RunAggregateQueryIsAThinWrapperOverExec) {
  std::vector<Triple> triples = {
      {"s1", "label", "a"}, {"s1", "p1", "x"}, {"s1", "p2", "y"},
      {"s2", "label", "b"}, {"s2", "p1", "z"},
  };
  auto parsed = ParseSparql("degree", R"(SELECT * WHERE {
    ?g <label> ?l . ?g ?p ?x .
  })");
  ASSERT_TRUE(parsed.ok());
  auto query =
      std::make_shared<const GraphPatternQuery>(std::move(*parsed));
  AggregateSpec spec;
  spec.group_vars = {"g"};
  spec.counted_var = "p";
  spec.count_var = "n";
  EngineOptions options;
  options.kind = EngineKind::kNtgaLazy;

  auto legacy_dfs = MakeDfsWithBase(triples);
  auto unified_dfs = MakeDfsWithBase(triples);
  ASSERT_NE(legacy_dfs, nullptr);
  ASSERT_NE(unified_dfs, nullptr);
  auto legacy =
      RunAggregateQuery(legacy_dfs.get(), "base", query, spec, options);
  ExecRequest request;
  request.payload = ExecPayload::kSingle;
  request.query = query;
  request.aggregate = spec;
  auto unified = Exec(unified_dfs.get(), "base", request, options);
  ASSERT_TRUE(legacy.ok() && unified.ok());
  EXPECT_FALSE(legacy->answers.empty());
  EXPECT_EQ(legacy->answers, unified->answers);
  ExpectStatsIdentical(legacy->stats, unified->stats);
}

TEST(ExecRequestTest, RunQueryBatchIsAThinWrapperOverExec) {
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  std::vector<std::shared_ptr<const GraphPatternQuery>> queries;
  for (const std::string id : {"B0", "B1"}) {
    auto q = GetTestbedQuery(id);
    ASSERT_TRUE(q.ok());
    queries.push_back(*q);
  }
  EngineOptions options;
  options.kind = EngineKind::kNtgaLazy;

  auto legacy_dfs = MakeDfsWithBase(triples);
  auto unified_dfs = MakeDfsWithBase(triples);
  ASSERT_NE(legacy_dfs, nullptr);
  ASSERT_NE(unified_dfs, nullptr);
  auto legacy = RunQueryBatch(legacy_dfs.get(), "base", queries, options);
  ExecRequest request;
  request.payload = ExecPayload::kBatch;
  request.queries = queries;
  auto unified = Exec(unified_dfs.get(), "base", request, options);
  ASSERT_TRUE(legacy.ok() && unified.ok());
  ASSERT_EQ(unified->per_query.size(), queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(legacy->answers[q], unified->per_query[q]) << q;
  }
  ExpectStatsIdentical(legacy->stats, unified->stats);
}

TEST(ExecRequestTest, RunUnionQueryIsAThinWrapperOverExec) {
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  std::vector<std::shared_ptr<const GraphPatternQuery>> branches;
  for (const std::string id : {"B0", "B1"}) {
    auto q = GetTestbedQuery(id);
    ASSERT_TRUE(q.ok());
    branches.push_back(*q);
  }
  EngineOptions options;
  options.kind = EngineKind::kNtgaLazy;

  auto legacy_dfs = MakeDfsWithBase(triples);
  auto unified_dfs = MakeDfsWithBase(triples);
  ASSERT_NE(legacy_dfs, nullptr);
  ASSERT_NE(unified_dfs, nullptr);
  auto legacy = RunUnionQuery(legacy_dfs.get(), "base", branches, options);
  ExecRequest request;
  request.payload = ExecPayload::kUnion;
  request.queries = branches;
  auto unified = Exec(unified_dfs.get(), "base", request, options);
  ASSERT_TRUE(legacy.ok() && unified.ok());
  EXPECT_EQ(legacy->answers, unified->answers);
  ExpectStatsIdentical(legacy->stats, unified->stats);
}

TEST(ExecRequestTest, RejectsMalformedRequests) {
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  auto dfs = MakeDfsWithBase(triples);
  ASSERT_NE(dfs, nullptr);
  EngineOptions options;

  ExecRequest no_query;
  no_query.payload = ExecPayload::kSingle;
  EXPECT_FALSE(Exec(dfs.get(), "base", no_query, options).ok());

  ExecRequest empty_batch;
  empty_batch.payload = ExecPayload::kBatch;
  EXPECT_FALSE(Exec(dfs.get(), "base", empty_batch, options).ok());

  auto query = GetTestbedQuery("B1");
  ASSERT_TRUE(query.ok());
  ExecRequest mixed;
  mixed.payload = ExecPayload::kBatch;
  mixed.query = *query;  // single-query field on a batch payload
  EXPECT_FALSE(Exec(dfs.get(), "base", mixed, options).ok());
}

TEST(ExecRequestTest, EngineNameParsingListsAuto) {
  auto parsed = EngineKindFromString("auto");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, EngineKind::kAuto);
  auto bad = EngineKindFromString("mapreduce");
  ASSERT_FALSE(bad.ok());
  const std::string message = bad.status().ToString();
  EXPECT_NE(message.find("auto"), std::string::npos)
      << "the error should enumerate every valid name: " << message;
  EXPECT_NE(message.find("lazypartial"), std::string::npos) << message;
}

}  // namespace
}  // namespace rdfmr
