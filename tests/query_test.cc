// Unit tests for the query model: node/triple/star patterns, star
// decomposition and join-graph derivation, solutions, and the SPARQL
// subset parser.

#include <gtest/gtest.h>

#include "query/pattern.h"
#include "query/solution.h"
#include "query/sparql_parser.h"

namespace rdfmr {
namespace {

// ---- NodePattern ------------------------------------------------------------

TEST(NodePatternTest, ConstantMatchesExactly) {
  NodePattern n = NodePattern::Const("go1");
  EXPECT_TRUE(n.Matches("go1"));
  EXPECT_FALSE(n.Matches("go11"));
  EXPECT_TRUE(n.is_constant());
  EXPECT_FALSE(n.partially_bound());
}

TEST(NodePatternTest, VariableMatchesEverything) {
  NodePattern n = NodePattern::Var("x");
  EXPECT_TRUE(n.Matches("anything"));
  EXPECT_TRUE(n.Matches(""));
}

TEST(NodePatternTest, ContainsFilterIsSubstring) {
  NodePattern n = NodePattern::Var("x", "hexo");
  EXPECT_TRUE(n.partially_bound());
  EXPECT_TRUE(n.Matches("hexokinase gene"));
  EXPECT_TRUE(n.Matches("prefix hexo"));
  EXPECT_FALSE(n.Matches("HEXOKINASE"));
  EXPECT_FALSE(n.Matches("hex o"));
}

// ---- TriplePattern / StarPattern ---------------------------------------------

TEST(TriplePatternTest, VariablesCollectsAllPositions) {
  TriplePattern tp = TriplePattern::Unbound(NodePattern::Var("s"), "p",
                                            NodePattern::Var("o"));
  EXPECT_EQ(tp.Variables(), (std::vector<std::string>{"s", "p", "o"}));
  TriplePattern bound = TriplePattern::Bound(
      NodePattern::Var("s"), "label", NodePattern::Const("x"));
  EXPECT_EQ(bound.Variables(), (std::vector<std::string>{"s"}));
}

TEST(StarPatternTest, BoundAndUnboundBookkeeping) {
  StarPattern star;
  star.subject_var = "g";
  star.patterns.push_back(TriplePattern::Bound(
      NodePattern::Var("g"), "label", NodePattern::Var("l")));
  star.patterns.push_back(TriplePattern::Bound(
      NodePattern::Var("g"), "xGO", NodePattern::Var("go")));
  star.patterns.push_back(TriplePattern::Unbound(
      NodePattern::Var("g"), "up", NodePattern::Var("x")));
  EXPECT_EQ(star.BoundProperties(),
            (std::set<std::string>{"label", "xGO"}));
  EXPECT_EQ(star.UnboundIndexes(), (std::vector<size_t>{2}));
  EXPECT_TRUE(star.HasUnbound());
  EXPECT_EQ(star.NumUnbound(), 1u);
  EXPECT_EQ(star.Arity(), 3u);
}

// ---- GraphPatternQuery decomposition -----------------------------------------

std::vector<TriplePattern> TwoStarPatterns() {
  return {
      TriplePattern::Bound(NodePattern::Var("p"), "label",
                           NodePattern::Var("l")),
      TriplePattern::Unbound(NodePattern::Var("p"), "up",
                             NodePattern::Var("x")),
      TriplePattern::Bound(NodePattern::Var("o"), "product",
                           NodePattern::Var("p")),
      TriplePattern::Bound(NodePattern::Var("o"), "price",
                           NodePattern::Var("pr")),
  };
}

TEST(QueryTest, DecomposesIntoStarsInFirstAppearanceOrder) {
  auto q = GraphPatternQuery::Create("q", TwoStarPatterns());
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->stars().size(), 2u);
  EXPECT_EQ(q->stars()[0].subject_var, "p");
  EXPECT_EQ(q->stars()[1].subject_var, "o");
  EXPECT_EQ(q->stars()[0].Arity(), 2u);
  EXPECT_EQ(q->stars()[1].Arity(), 2u);
  EXPECT_TRUE(q->HasUnbound());
  EXPECT_EQ(q->NumUnbound(), 1u);
}

TEST(QueryTest, DerivesObjectSubjectJoin) {
  auto q = GraphPatternQuery::Create("q", TwoStarPatterns());
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->joins().size(), 1u);
  const StarJoin& join = q->joins()[0];
  EXPECT_EQ(join.variable, "p");
  EXPECT_EQ(join.kind, StarJoinKind::kObjectSubject);
  // Normalized: the left side carries the object position.
  EXPECT_EQ(join.left_star, 1u);
  EXPECT_EQ(join.right_star, 0u);
  EXPECT_EQ(join.left_pattern_index, 0);
  EXPECT_EQ(join.right_pattern_index, -1);
  EXPECT_FALSE(join.LeftOnUnbound(q->stars()));
}

TEST(QueryTest, DerivesObjectObjectJoin) {
  std::vector<TriplePattern> patterns = {
      TriplePattern::Bound(NodePattern::Var("a"), "product",
                           NodePattern::Var("p")),
      TriplePattern::Bound(NodePattern::Var("b"), "reviewFor",
                           NodePattern::Var("p")),
  };
  auto q = GraphPatternQuery::Create("oo", std::move(patterns));
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->joins().size(), 1u);
  EXPECT_EQ(q->joins()[0].kind, StarJoinKind::kObjectObject);
}

TEST(QueryTest, JoinOnUnboundObjectIsFlagged) {
  std::vector<TriplePattern> patterns = {
      TriplePattern::Bound(NodePattern::Var("p"), "label",
                           NodePattern::Var("l")),
      TriplePattern::Unbound(NodePattern::Var("p"), "up",
                             NodePattern::Var("x")),
      TriplePattern::Bound(NodePattern::Var("x"), "featureLabel",
                           NodePattern::Var("fl")),
  };
  auto q = GraphPatternQuery::Create("b1", std::move(patterns));
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->joins().size(), 1u);
  const StarJoin& join = q->joins()[0];
  EXPECT_EQ(join.kind, StarJoinKind::kObjectSubject);
  EXPECT_TRUE(join.LeftOnUnbound(q->stars()));
}

TEST(QueryTest, RejectsEmptyQuery) {
  EXPECT_FALSE(GraphPatternQuery::Create("empty", {}).ok());
}

TEST(QueryTest, RejectsDisconnectedStars) {
  std::vector<TriplePattern> patterns = {
      TriplePattern::Bound(NodePattern::Var("a"), "p1",
                           NodePattern::Var("x")),
      TriplePattern::Bound(NodePattern::Var("b"), "p2",
                           NodePattern::Var("y")),
  };
  auto q = GraphPatternQuery::Create("disc", std::move(patterns));
  EXPECT_TRUE(q.status().IsInvalidArgument());
}

TEST(QueryTest, RejectsConstantSubject) {
  std::vector<TriplePattern> patterns = {
      TriplePattern::Bound(NodePattern::Const("gene9"), "label",
                           NodePattern::Var("l")),
  };
  EXPECT_FALSE(GraphPatternQuery::Create("cs", std::move(patterns)).ok());
}

TEST(QueryTest, RejectsPropertyVariableInNodePosition) {
  std::vector<TriplePattern> patterns = {
      TriplePattern::Unbound(NodePattern::Var("s"), "p",
                             NodePattern::Var("o")),
      TriplePattern::Bound(NodePattern::Var("s"), "label",
                           NodePattern::Var("p")),  // reuses ?p as object
  };
  auto q = GraphPatternQuery::Create("pv", std::move(patterns));
  EXPECT_EQ(q.status().code(), StatusCode::kNotImplemented);
}

TEST(QueryTest, VariablesAreSortedAndComplete) {
  auto q = GraphPatternQuery::Create("q", TwoStarPatterns());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->variables(),
            (std::vector<std::string>{"l", "o", "p", "pr", "up", "x"}));
}

TEST(QueryTest, ToStringMentionsStarsAndJoins) {
  auto q = GraphPatternQuery::Create("pretty", TwoStarPatterns());
  ASSERT_TRUE(q.ok());
  std::string s = q->ToString();
  EXPECT_NE(s.find("Star(?p)"), std::string::npos);
  EXPECT_NE(s.find("Object-Subject"), std::string::npos);
}

// ---- Solutions ---------------------------------------------------------------

TEST(SolutionTest, BindAndConflict) {
  Solution s;
  EXPECT_TRUE(s.Bind("x", "1"));
  EXPECT_TRUE(s.Bind("x", "1"));   // re-binding same value is fine
  EXPECT_FALSE(s.Bind("x", "2"));  // conflicting value rejected
  EXPECT_EQ(*s.Get("x"), "1");
  EXPECT_EQ(s.Get("y"), nullptr);
}

TEST(SolutionTest, MergeConsistency) {
  Solution a, b, c;
  a.Bind("x", "1");
  b.Bind("y", "2");
  c.Bind("x", "other");
  auto ab = a.Merge(b);
  ASSERT_TRUE(ab.ok());
  EXPECT_EQ(ab->size(), 2u);
  EXPECT_FALSE(a.Merge(c).ok());
}

TEST(SolutionTest, SerdeRoundtripWithNastyValues) {
  Solution s;
  s.Bind("var1", "value with = and ; and \\ chars");
  s.Bind("var2", "");
  s.Bind("a=b", "tricky var name");
  auto back = Solution::Deserialize(s.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, s);
}

TEST(SolutionTest, EmptySolutionSerde) {
  Solution s;
  auto back = Solution::Deserialize(s.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 0u);
}

TEST(SolutionTest, ParseSolutionFileDeduplicates) {
  Solution s;
  s.Bind("x", "1");
  auto set = ParseSolutionFile({s.Serialize(), s.Serialize()});
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->size(), 1u);
}

// ---- SPARQL parser -------------------------------------------------------------

TEST(SparqlTest, ParsesBoundAndUnboundPatterns) {
  auto q = ParseSparql("t", R"(SELECT * WHERE {
    ?g <label> ?l .
    ?g ?up ?x .
  })");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->stars().size(), 1u);
  EXPECT_TRUE(q->stars()[0].patterns[0].property_bound);
  EXPECT_FALSE(q->stars()[0].patterns[1].property_bound);
  EXPECT_EQ(q->stars()[0].patterns[1].property, "up");
}

TEST(SparqlTest, ContainsFilterBecomesPartiallyBoundObject) {
  auto q = ParseSparql("t", R"(SELECT * WHERE {
    ?g <label> ?l . ?g ?up ?x .
    FILTER(CONTAINS(STR(?x), "go_"))
  })");
  ASSERT_TRUE(q.ok());
  const NodePattern& obj = q->stars()[0].patterns[1].object;
  EXPECT_TRUE(obj.partially_bound());
  EXPECT_EQ(obj.contains_filter, "go_");
}

TEST(SparqlTest, EqualityFilterPinsConstant) {
  auto q = ParseSparql("t", R"(SELECT * WHERE {
    ?g <label> ?l . FILTER(?l = "nur77")
    ?g <xGO> ?go .
  })");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->stars()[0].patterns[0].object.is_constant());
  EXPECT_EQ(q->stars()[0].patterns[0].object.value, "nur77");
}

TEST(SparqlTest, EqualityFilterOnPropertyVariableBindsProperty) {
  auto q = ParseSparql("t", R"(SELECT * WHERE {
    ?g ?p ?o . FILTER(?p = <xGO>)
    ?g <label> ?l .
  })");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->stars()[0].patterns[0].property_bound);
  EXPECT_EQ(q->stars()[0].patterns[0].property, "xGO");
}

TEST(SparqlTest, IriObjectIsConstant) {
  auto q = ParseSparql("t",
                       "SELECT * WHERE { ?s <type> <Scientist> . ?s ?p ?o }");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->stars()[0].patterns[0].object.is_constant());
  EXPECT_EQ(q->stars()[0].patterns[0].object.value, "Scientist");
}

TEST(SparqlTest, ProjectionListAccepted) {
  auto q = ParseSparql(
      "t", "SELECT ?s ?o WHERE { ?s <p> ?o . ?s ?up ?x . }");
  EXPECT_TRUE(q.ok());
}

TEST(SparqlTest, CommentsIgnored) {
  auto q = ParseSparql("t", R"(# leading comment
  SELECT * WHERE {
    ?s <p> ?o . # trailing comment
  })");
  EXPECT_TRUE(q.ok());
}

TEST(SparqlTest, ParseErrors) {
  EXPECT_FALSE(ParseSparql("t", "").ok());
  EXPECT_FALSE(ParseSparql("t", "SELECT * { ?s <p> ?o }").ok());
  EXPECT_FALSE(ParseSparql("t", "SELECT * WHERE { }").ok());
  EXPECT_FALSE(ParseSparql("t", "SELECT * WHERE { ?s <p> }").ok());
  EXPECT_FALSE(
      ParseSparql("t", "SELECT * WHERE { ?s \"lit\" ?o }").ok());
  EXPECT_FALSE(ParseSparql(
                   "t", "SELECT * WHERE { ?s <p> ?o FILTER(BOGUS(?o)) }")
                   .ok());
  EXPECT_FALSE(ParseSparql("t", "SELECT * WHERE { ?s <unterminated ?o }")
                   .ok());
}

TEST(SparqlTest, ComplexThreeStarQueryParses) {
  // The full catalog is covered in datagen_test; this is the most complex
  // single shape: three stars, two unbound patterns, one filtered.
  auto q = ParseSparql("b6", R"(SELECT * WHERE {
    ?p <label> ?l . ?p ?up1 ?x .
    ?x <featureLabel> ?fl .
    ?o <product> ?p . ?o ?up2 ?y .
    FILTER(CONTAINS(STR(?y), "vendor"))
    ?o <price> ?pr . })");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->stars().size(), 3u);
  EXPECT_EQ(q->NumUnbound(), 2u);
}

}  // namespace
}  // namespace rdfmr
