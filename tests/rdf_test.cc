// Unit tests for the RDF layer: terms, triples, N-Triples parsing and
// writing, IRI compaction, the dictionary, and graph statistics.

#include <gtest/gtest.h>

#include "rdf/dictionary.h"
#include "rdf/graph_stats.h"
#include "rdf/ntriples.h"
#include "rdf/term.h"
#include "rdf/triple.h"

namespace rdfmr {
namespace {

// ---- Term ------------------------------------------------------------------

TEST(TermTest, IriRoundtrip) {
  Term t = Term::Iri("http://example.org/gene9");
  EXPECT_EQ(t.ToNTriples(), "<http://example.org/gene9>");
  auto back = Term::FromNTriples(t.ToNTriples());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, t);
}

TEST(TermTest, PlainLiteralRoundtrip) {
  Term t = Term::Literal("retinoid receptor");
  EXPECT_EQ(t.ToNTriples(), "\"retinoid receptor\"");
  auto back = Term::FromNTriples(t.ToNTriples());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, t);
}

TEST(TermTest, LanguageLiteralRoundtrip) {
  Term t = Term::Literal("Gen", "", "de");
  EXPECT_EQ(t.ToNTriples(), "\"Gen\"@de");
  auto back = Term::FromNTriples(t.ToNTriples());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->language(), "de");
}

TEST(TermTest, TypedLiteralRoundtrip) {
  Term t = Term::Literal("42", "http://www.w3.org/2001/XMLSchema#int");
  EXPECT_EQ(t.ToNTriples(),
            "\"42\"^^<http://www.w3.org/2001/XMLSchema#int>");
  auto back = Term::FromNTriples(t.ToNTriples());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->datatype(), "http://www.w3.org/2001/XMLSchema#int");
}

TEST(TermTest, BlankNodeRoundtrip) {
  Term t = Term::Blank("b17");
  EXPECT_EQ(t.ToNTriples(), "_:b17");
  auto back = Term::FromNTriples("_:b17");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->is_blank());
  EXPECT_EQ(back->value(), "b17");
}

TEST(TermTest, LiteralEscapesRoundtrip) {
  Term t = Term::Literal("line1\nline2\t\"quoted\" back\\slash");
  auto back = Term::FromNTriples(t.ToNTriples());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->value(), t.value());
}

TEST(TermTest, ParseErrors) {
  EXPECT_FALSE(Term::FromNTriples("").ok());
  EXPECT_FALSE(Term::FromNTriples("<unterminated").ok());
  EXPECT_FALSE(Term::FromNTriples("\"unterminated").ok());
  EXPECT_FALSE(Term::FromNTriples("bareword").ok());
  EXPECT_FALSE(Term::FromNTriples("\"lit\"^^garbage").ok());
}

TEST(TermTest, Ordering) {
  EXPECT_LT(Term::Iri("a"), Term::Literal("a"));
  EXPECT_LT(Term::Iri("a"), Term::Iri("b"));
}

// ---- Triple ----------------------------------------------------------------

TEST(TripleTest, SerdeRoundtrip) {
  Triple t("gene9", "xGO", "go1");
  auto back = Triple::Deserialize(t.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, t);
}

TEST(TripleTest, SerdeWithEmbeddedSeparators) {
  Triple t("s with\ttab", "p\\with\\backslash", "o\nwith newline");
  auto back = Triple::Deserialize(t.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, t);
}

TEST(TripleTest, DeserializeRejectsWrongArity) {
  EXPECT_FALSE(Triple::Deserialize("only\ttwo").ok());
  EXPECT_FALSE(Triple::Deserialize("a\tb\tc\td").ok());
}

TEST(TripleTest, BatchRoundtrip) {
  std::vector<Triple> triples = {{"s1", "p1", "o1"}, {"s2", "p2", "o2"}};
  auto back = DeserializeTriples(SerializeTriples(triples));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, triples);
}

TEST(TripleTest, ByteSizeCountsFields) {
  Triple t("ab", "c", "defg");
  EXPECT_EQ(t.ByteSize(), 2u + 1u + 4u + 3u);
}

// ---- N-Triples -------------------------------------------------------------

TEST(NTriplesTest, ParseSimpleLine) {
  auto st = ParseNTriplesLine(
      "<http://x/s> <http://x/p> \"object value\" .");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->subject.value(), "http://x/s");
  EXPECT_EQ(st->predicate.value(), "http://x/p");
  EXPECT_EQ(st->object.value(), "object value");
}

TEST(NTriplesTest, ParseIriObject) {
  auto st = ParseNTriplesLine("<http://x/s> <http://x/p> <http://x/o> .");
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(st->object.is_iri());
}

TEST(NTriplesTest, RejectsMissingDot) {
  EXPECT_FALSE(ParseNTriplesLine("<s> <p> <o>").ok());
}

TEST(NTriplesTest, RejectsLiteralSubject) {
  EXPECT_FALSE(ParseNTriplesLine("\"lit\" <p> <o> .").ok());
}

TEST(NTriplesTest, RejectsNonIriPredicate) {
  EXPECT_FALSE(ParseNTriplesLine("<s> _:b <o> .").ok());
  EXPECT_FALSE(ParseNTriplesLine("<s> \"p\" <o> .").ok());
}

TEST(NTriplesTest, DocumentRoundtripWithCommentsAndBlanks) {
  std::string text =
      "# a comment line\n"
      "<http://x/s1> <http://x/p> <http://x/o1> .\n"
      "\n"
      "<http://x/s2> <http://x/p> \"lit \\\"x\\\"\"@en .\n";
  auto statements = ParseNTriples(text);
  ASSERT_TRUE(statements.ok());
  ASSERT_EQ(statements->size(), 2u);
  std::string rewritten = WriteNTriples(*statements);
  auto reparsed = ParseNTriples(rewritten);
  ASSERT_TRUE(reparsed.ok());
  ASSERT_EQ(reparsed->size(), 2u);
  EXPECT_EQ((*reparsed)[1].object.language(), "en");
}

TEST(NTriplesTest, CompactorLongestPrefixWins) {
  IriCompactor compactor({{"http://bio2rdf.org/", "bio:"},
                          {"http://bio2rdf.org/ns/", ""}});
  EXPECT_EQ(compactor.Compact(Term::Iri("http://bio2rdf.org/ns/xGO")),
            "xGO");
  EXPECT_EQ(compactor.Compact(Term::Iri("http://bio2rdf.org/gene9")),
            "bio:gene9");
  EXPECT_EQ(compactor.Compact(Term::Iri("http://other.org/x")),
            "http://other.org/x");
  EXPECT_EQ(compactor.Compact(Term::Literal("plain")), "plain");
  EXPECT_EQ(compactor.Compact(Term::Blank("b1")), "_:b1");
}

TEST(NTriplesTest, LoadToEngineTriples) {
  IriCompactor compactor(
      std::vector<std::pair<std::string, std::string>>{{"http://x/", ""}});
  auto triples = LoadNTriples(
      "<http://x/gene9> <http://x/xGO> <http://x/go1> .\n"
      "<http://x/gene9> <http://x/label> \"retinoid\" .\n",
      compactor);
  ASSERT_TRUE(triples.ok());
  ASSERT_EQ(triples->size(), 2u);
  EXPECT_EQ((*triples)[0], Triple("gene9", "xGO", "go1"));
  EXPECT_EQ((*triples)[1], Triple("gene9", "label", "retinoid"));
}

// ---- Dictionary ------------------------------------------------------------

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary dict;
  uint32_t a = dict.Intern("gene9");
  uint32_t b = dict.Intern("xGO");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.Intern("gene9"), a);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.At(a), "gene9");
  EXPECT_EQ(dict.At(b), "xGO");
}

TEST(DictionaryTest, LookupMissing) {
  Dictionary dict;
  dict.Intern("present");
  EXPECT_TRUE(dict.Lookup("present").ok());
  EXPECT_TRUE(dict.Lookup("absent").status().IsNotFound());
}

TEST(DictionaryTest, TracksStringBytes) {
  Dictionary dict;
  dict.Intern("abc");
  dict.Intern("de");
  dict.Intern("abc");  // no growth
  EXPECT_EQ(dict.StringBytes(), 5u);
}

// ---- GraphStats ------------------------------------------------------------

TEST(GraphStatsTest, CountsAndMultiplicity) {
  std::vector<Triple> triples = {
      {"g1", "xGO", "go1"}, {"g1", "xGO", "go2"}, {"g1", "label", "a"},
      {"g2", "xGO", "go1"}, {"g2", "label", "b"},
  };
  GraphStats stats = GraphStats::Compute(triples);
  EXPECT_EQ(stats.triple_count(), 5u);
  EXPECT_EQ(stats.distinct_subjects(), 2u);
  EXPECT_EQ(stats.distinct_properties(), 2u);

  PropertyStats xgo = stats.ForProperty("xGO");
  EXPECT_EQ(xgo.triple_count, 3u);
  EXPECT_EQ(xgo.subject_count, 2u);
  EXPECT_EQ(xgo.max_multiplicity, 2u);
  EXPECT_DOUBLE_EQ(xgo.avg_multiplicity, 1.5);
  EXPECT_TRUE(xgo.multi_valued());

  PropertyStats label = stats.ForProperty("label");
  EXPECT_FALSE(label.multi_valued());
  EXPECT_EQ(stats.ForProperty("absent").triple_count, 0u);

  EXPECT_DOUBLE_EQ(stats.MultiValuedFraction(), 0.5);
  EXPECT_DOUBLE_EQ(stats.AvgTriplesPerSubject(), 2.5);
  EXPECT_FALSE(stats.Summary().empty());
}

TEST(GraphStatsTest, EmptyGraph) {
  GraphStats stats = GraphStats::Compute({});
  EXPECT_EQ(stats.triple_count(), 0u);
  EXPECT_DOUBLE_EQ(stats.MultiValuedFraction(), 0.0);
  EXPECT_DOUBLE_EQ(stats.AvgTriplesPerSubject(), 0.0);
}

}  // namespace
}  // namespace rdfmr
