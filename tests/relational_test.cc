// Tests for the relational layer: n-tuple serde, join-key extraction,
// answer decoding, and the Pig/Hive plan compilers' structural properties
// (cycle counts, scan counts, compress jobs, inlined single-pattern stars,
// Sel-SJ-first shapes).

#include <gtest/gtest.h>

#include "datagen/testbed.h"
#include "relational/rel_compiler.h"
#include "relational/rel_tuple.h"

namespace rdfmr {
namespace {

RelSchema TwoPatternSchema() {
  return {
      TriplePattern::Bound(NodePattern::Var("g"), "label",
                           NodePattern::Var("l")),
      TriplePattern::Unbound(NodePattern::Var("g"), "up",
                             NodePattern::Var("x")),
  };
}

RelTuple MakeTuple() {
  RelTuple t;
  t.triples.emplace_back("gene9", "label", "retinoid");
  t.triples.emplace_back("gene9", "xGO", "go1");
  return t;
}

TEST(RelTupleTest, SerdeRoundtrip) {
  RelTuple t = MakeTuple();
  auto back = RelTuple::Deserialize(t.Serialize(), 2);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->triples, t.triples);
}

TEST(RelTupleTest, DeserializeChecksArity) {
  RelTuple t = MakeTuple();
  EXPECT_FALSE(RelTuple::Deserialize(t.Serialize(), 3).ok());
  EXPECT_FALSE(RelTuple::Deserialize("a\tb", 1).ok());
}

TEST(RelTupleTest, ToSolutionBindsAllVariables) {
  auto sol = MakeTuple().ToSolution(TwoPatternSchema());
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(*sol->Get("g"), "gene9");
  EXPECT_EQ(*sol->Get("l"), "retinoid");
  EXPECT_EQ(*sol->Get("up"), "xGO");
  EXPECT_EQ(*sol->Get("x"), "go1");
}

TEST(RelTupleTest, ToSolutionRejectsMismatchedColumn) {
  RelTuple t = MakeTuple();
  t.triples[0].property = "wrongProperty";
  EXPECT_FALSE(t.ToSolution(TwoPatternSchema()).ok());
}

TEST(RelTupleTest, ToSolutionRejectsInconsistentSharedVariable) {
  RelSchema schema = {
      TriplePattern::Bound(NodePattern::Var("g"), "p1",
                           NodePattern::Var("v")),
      TriplePattern::Bound(NodePattern::Var("g"), "p2",
                           NodePattern::Var("v")),
  };
  RelTuple t;
  t.triples.emplace_back("s", "p1", "same");
  t.triples.emplace_back("s", "p2", "different");
  EXPECT_FALSE(t.ToSolution(schema).ok());
}

TEST(RelTupleTest, ExtractJoinKeyPositions) {
  RelSchema schema = TwoPatternSchema();
  RelTuple t = MakeTuple();
  auto g = ExtractJoinKey(schema, t, "g");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(*g, "gene9");
  auto x = ExtractJoinKey(schema, t, "x");
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(*x, "go1");
  EXPECT_TRUE(ExtractJoinKey(schema, t, "nope").status().IsNotFound());
}

TEST(RelTupleTest, DecodeAnswersDeduplicates) {
  RelTuple t = MakeTuple();
  auto set = DecodeRelationalAnswers(TwoPatternSchema(),
                                     {t.Serialize(), t.Serialize()});
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->size(), 1u);
}

// ---- Plan compiler structure ---------------------------------------------------

CompiledPlan CompileFor(const std::string& query_id, RelationalStyle style,
                        RelationalGrouping grouping =
                            RelationalGrouping::kStarPerCycle) {
  auto query = GetTestbedQuery(query_id);
  EXPECT_TRUE(query.ok());
  RelationalOptions options;
  options.style = style;
  options.grouping = grouping;
  auto plan = CompileRelationalPlan(*query, "base", "tmp", options);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return std::move(*plan);
}

uint32_t TotalFullScans(const CompiledPlan& plan) {
  uint32_t scans = 0;
  for (const JobSpec& job : plan.workflow.jobs) {
    scans += job.full_scans_of_base;
  }
  return scans;
}

TEST(RelCompilerTest, HiveTwoStarPlanShape) {
  CompiledPlan plan = CompileFor("B0", RelationalStyle::kHive);
  // 2 star cycles + 1 join cycle.
  ASSERT_EQ(plan.workflow.jobs.size(), 3u);
  EXPECT_EQ(TotalFullScans(plan), 2u) << "Hive shares scans per cycle";
  EXPECT_EQ(plan.star_phase_paths.size(), 2u);
  EXPECT_FALSE(plan.workflow.final_output_path.empty());
}

TEST(RelCompilerTest, PigScansOncePerOperand) {
  CompiledPlan plan = CompileFor("B0", RelationalStyle::kPig);
  // B0: star1 has 3 patterns, star2 has 3 patterns -> 6 operand scans.
  EXPECT_EQ(TotalFullScans(plan), 6u);
}

TEST(RelCompilerTest, PigAddsCompressJobForUnboundMultiStar) {
  CompiledPlan plan = CompileFor("B1", RelationalStyle::kPig);
  ASSERT_FALSE(plan.workflow.jobs.empty());
  EXPECT_EQ(plan.workflow.jobs[0].name, "pig-filter-compress");
  // After compressing, later cycles scan the compressed copy, so the base
  // is scanned exactly once.
  EXPECT_EQ(TotalFullScans(plan), 1u);
  // Hive runs the same query without the extra job.
  CompiledPlan hive = CompileFor("B1", RelationalStyle::kHive);
  EXPECT_EQ(hive.workflow.jobs.size() + 1, plan.workflow.jobs.size());
}

TEST(RelCompilerTest, SingleStarQueryIsOneCycle) {
  CompiledPlan plan = CompileFor("A1", RelationalStyle::kHive);
  EXPECT_EQ(plan.workflow.jobs.size(), 1u);
  EXPECT_EQ(plan.workflow.final_output_path,
            plan.star_phase_paths.at(0));
}

TEST(RelCompilerTest, SinglePatternStarInlinedIntoJoinCycle) {
  // A5's second star is a lone label edge: Hive folds it into the join
  // cycle (2 jobs total, both scanning the base), mirroring the paper.
  CompiledPlan plan = CompileFor("A5", RelationalStyle::kHive);
  EXPECT_EQ(plan.workflow.jobs.size(), 2u);
  EXPECT_EQ(TotalFullScans(plan), 2u);
}

TEST(RelCompilerTest, SelSjFirstFoldsObjectSubjectJoin) {
  CompiledPlan plan = CompileFor("Q1a", RelationalStyle::kHive,
                                 RelationalGrouping::kSelSJFirst);
  EXPECT_EQ(plan.workflow.jobs.size(), 2u);
  EXPECT_EQ(TotalFullScans(plan), 2u);
}

TEST(RelCompilerTest, SelSjFirstObjectObjectStaysThreeCycles) {
  CompiledPlan plan = CompileFor("Q3a", RelationalStyle::kHive,
                                 RelationalGrouping::kSelSJFirst);
  EXPECT_EQ(plan.workflow.jobs.size(), 3u);
  EXPECT_EQ(TotalFullScans(plan), 3u)
      << "the case study's O-O join rescans the base in the join cycle";
}

TEST(RelCompilerTest, ThreeStarQueryChainsJoins) {
  CompiledPlan plan = CompileFor("B5", RelationalStyle::kHive);
  // B5: product star + offer star get cycles; the single-pattern feature
  // star is inlined; then 2 join cycles.
  EXPECT_EQ(plan.workflow.jobs.size(), 4u);
}

TEST(RelCompilerTest, NullQueryRejected) {
  RelationalOptions options;
  EXPECT_FALSE(
      CompileRelationalPlan(nullptr, "base", "tmp", options).ok());
}

TEST(RelCompilerTest, SelSjFirstRequiresTwoStars) {
  auto query = GetTestbedQuery("A1");  // single star
  ASSERT_TRUE(query.ok());
  RelationalOptions options;
  options.grouping = RelationalGrouping::kSelSJFirst;
  auto plan = CompileRelationalPlan(*query, "base", "tmp", options);
  EXPECT_EQ(plan.status().code(), StatusCode::kNotImplemented);
}

TEST(RelCompilerTest, IntermediatePathsExcludeFinalOutput) {
  CompiledPlan plan = CompileFor("B0", RelationalStyle::kHive);
  for (const std::string& path : plan.workflow.intermediate_paths) {
    EXPECT_NE(path, plan.workflow.final_output_path);
  }
}

}  // namespace
}  // namespace rdfmr
