// End-to-end socket tests for `rdfmr serve`'s transport: many concurrent
// NDJSON clients against one loaded dataset must observe byte-identical
// answers to direct RunQuery calls, with plan- and result-cache hits
// visible in the stats verb, and admission rejections surfacing as
// Unavailable responses when the queue bound is exceeded.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/strings.h"
#include "service/client.h"
#include "service/query_service.h"
#include "service/server.h"
#include "tests/test_util.h"

namespace rdfmr {
namespace service {
namespace {

using testing_util::MakeDfsWithBase;
using testing_util::RoomyCluster;
using testing_util::SmallDataset;

std::string TestSocketPath(const char* tag) {
  return StringFormat("/tmp/rdfmr-%s-%d.sock", tag,
                      static_cast<int>(::getpid()));
}

std::vector<std::string> AnswerLines(const SolutionSet& answers) {
  std::vector<std::string> lines;
  lines.reserve(answers.size());
  for (const Solution& solution : answers) {
    lines.push_back(solution.Serialize());
  }
  return lines;
}

std::vector<std::string> AnswerLines(const JsonValue& array) {
  std::vector<std::string> lines;
  if (!array.is_array()) return lines;
  lines.reserve(array.AsArray().size());
  for (const JsonValue& line : array.AsArray()) {
    lines.push_back(line.AsString());
  }
  return lines;
}

TEST(ServiceSocketTest, EightConcurrentClientsMatchDirectRuns) {
  const std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  const std::vector<std::string> query_ids = {"B0", "B1", "B4"};

  // Ground truth: direct RunQuery per catalog query on a private DFS.
  EngineOptions options;
  options.kind = EngineKind::kNtgaLazy;
  std::map<std::string, std::vector<std::string>> expected;
  {
    auto dfs = MakeDfsWithBase(triples);
    ASSERT_NE(dfs, nullptr);
    for (const std::string& id : query_ids) {
      auto query = GetTestbedQuery(id);
      ASSERT_TRUE(query.ok());
      auto direct = RunQuery(dfs.get(), "base", *query, options);
      ASSERT_TRUE(direct.ok()) << direct.status().ToString();
      ASSERT_TRUE(direct->stats.ok());
      expected[id] = AnswerLines(direct->answers);
      ASSERT_FALSE(expected[id].empty()) << id;
    }
  }

  ServiceConfig config;
  config.cluster = RoomyCluster();
  config.max_concurrent = 4;
  QueryService query_service(config);
  ASSERT_TRUE(query_service.LoadDataset("bsbm", triples).ok());

  const std::string socket_path = TestSocketPath("socket-test");
  ServiceServer server(&query_service, socket_path);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 8;
  constexpr int kRounds = 3;
  std::vector<std::vector<std::string>> errors(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c]() {
      auto fail = [&](const std::string& what) {
        errors[c].push_back(what);
      };
      auto client = ServiceClient::Connect(socket_path);
      if (!client.ok()) {
        fail("connect: " + client.status().ToString());
        return;
      }
      for (int round = 0; round < kRounds; ++round) {
        for (const std::string& id : query_ids) {
          JsonValue request = JsonValue::MakeObject();
          request.Set("verb", "query");
          request.Set("dataset", "bsbm");
          request.Set("query_id", id);
          request.Set("engine", "lazy");
          // The middle round bypasses the result cache so the plan cache
          // itself is exercised (and its hit counter moves).
          if (round == 1) request.Set("no_result_cache", true);
          auto response = client->Call(request);
          if (!response.ok()) {
            fail(id + ": " + response.status().ToString());
            continue;
          }
          if (!response->GetBool("ok") ||
              !response->Get("stats").GetBool("ok")) {
            fail(id + ": served run failed: " + response->Dump());
            continue;
          }
          if (AnswerLines(response->Get("answers")) != expected[id]) {
            fail(id + ": answers diverge from direct RunQuery");
          }
        }
      }
    });
  }
  for (auto& thread : clients) thread.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_TRUE(errors[c].empty())
        << "client " << c << ": " << errors[c].front();
  }

  // Counters: 8 clients x 3 rounds x 3 queries all served; with only 3
  // distinct (query, options) keys both caches must have hit repeatedly.
  auto stats_client = ServiceClient::Connect(socket_path);
  ASSERT_TRUE(stats_client.ok());
  JsonValue stats_request = JsonValue::MakeObject();
  stats_request.Set("verb", "stats");
  auto stats_response = stats_client->Call(stats_request);
  ASSERT_TRUE(stats_response.ok());
  ASSERT_TRUE(stats_response->GetBool("ok"));
  const JsonValue& stats = stats_response->Get("stats");
  EXPECT_EQ(stats.GetUint("served"),
            static_cast<uint64_t>(kClients * kRounds * 3));
  EXPECT_EQ(stats.GetUint("failed"), 0u);
  EXPECT_EQ(stats.GetUint("rejected"), 0u);
  EXPECT_GT(stats.Get("plan_cache").GetUint("hits"), 0u);
  EXPECT_GT(stats.Get("result_cache").GetUint("hits"), 0u);
  EXPECT_EQ(stats.Get("plan_cache").GetUint("entries"), 3u);

  JsonValue shutdown = JsonValue::MakeObject();
  shutdown.Set("verb", "shutdown");
  auto bye = stats_client->Call(shutdown);
  ASSERT_TRUE(bye.ok());
  EXPECT_TRUE(bye->GetBool("ok"));
  server.Wait();
  server.Stop();
  EXPECT_TRUE(server.stopped());
}

TEST(ServiceSocketTest, QueueBoundRejectionsSurfaceAsUnavailable) {
  // A loader the test holds closed, pinning the single worker inside an
  // executing request while more submissions arrive over the socket.
  std::mutex mu;
  std::condition_variable cv;
  bool entered = false;
  bool release = false;

  ServiceConfig config;
  config.cluster = RoomyCluster();
  config.max_concurrent = 1;
  config.queue_bound = 1;
  QueryService query_service(config);
  ASSERT_TRUE(query_service
                  .RegisterDataset(
                      "slow",
                      [&]() -> Result<std::vector<Triple>> {
                        std::unique_lock<std::mutex> lock(mu);
                        entered = true;
                        cv.notify_all();
                        cv.wait(lock, [&] { return release; });
                        return std::vector<Triple>{{"a", "p", "b"},
                                                   {"b", "p", "c"}};
                      })
                  .ok());

  const std::string socket_path = TestSocketPath("socket-admission");
  ServiceServer server(&query_service, socket_path);
  ASSERT_TRUE(server.Start().ok());

  JsonValue request = JsonValue::MakeObject();
  request.Set("verb", "query");
  request.Set("dataset", "slow");
  request.Set("sparql", "SELECT * WHERE { ?s ?p ?o . }");
  request.Set("engine", "lazy");

  // One client occupies the worker (blocked inside the loader).
  std::thread blocked_client([&]() {
    auto client = ServiceClient::Connect(socket_path);
    ASSERT_TRUE(client.ok());
    auto response = client->Call(request);
    ASSERT_TRUE(response.ok());
    EXPECT_TRUE(response->GetBool("ok")) << response->Dump();
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered; });
  }

  // Five more concurrent clients: one fits the queue, the rest must be
  // rejected with Unavailable while the worker stays pinned.
  constexpr int kExtra = 5;
  std::atomic<int> rejected{0};
  std::atomic<int> accepted{0};
  std::vector<std::thread> extra;
  extra.reserve(kExtra);
  for (int i = 0; i < kExtra; ++i) {
    extra.emplace_back([&]() {
      auto client = ServiceClient::Connect(socket_path);
      ASSERT_TRUE(client.ok());
      auto response = client->Call(request);
      ASSERT_TRUE(response.ok());
      if (response->GetBool("ok")) {
        ++accepted;
      } else {
        EXPECT_EQ(response->GetString("code"), "Unavailable")
            << response->Dump();
        ++rejected;
      }
    });
  }
  // Rejections return immediately; the accepted request drains only after
  // the gate opens.
  std::thread releaser([&]() {
    while (rejected.load() + accepted.load() < kExtra - 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::lock_guard<std::mutex> lock(mu);
    release = true;
    cv.notify_all();
  });
  for (auto& thread : extra) thread.join();
  releaser.join();
  blocked_client.join();

  EXPECT_GE(rejected.load(), 1);
  EXPECT_EQ(rejected.load() + accepted.load(), kExtra);

  auto stats_client = ServiceClient::Connect(socket_path);
  ASSERT_TRUE(stats_client.ok());
  JsonValue stats_request = JsonValue::MakeObject();
  stats_request.Set("verb", "stats");
  auto stats_response = stats_client->Call(stats_request);
  ASSERT_TRUE(stats_response.ok());
  EXPECT_GE(stats_response->Get("stats").GetUint("rejected"),
            static_cast<uint64_t>(rejected.load()));

  server.Stop();
}

}  // namespace
}  // namespace service
}  // namespace rdfmr
