// Concurrency stress for the query service's lock-free stats and sharded
// caches. These tests are deliberately thread-dense (up to 16 client
// threads hammering the warm result cache) and carry the service_stress
// ctest label: tools/check.sh runs them under ThreadSanitizer even in
// --quick mode, so a data race on the warm hot path — the path the
// sharding/atomics redesign made lock-free — fails CI, not production.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "query/sparql_parser.h"
#include "service/query_service.h"
#include "tests/test_util.h"

namespace rdfmr {
namespace service {
namespace {

using testing_util::RoomyCluster;

std::shared_ptr<const GraphPatternQuery> MakeQuery(
    const std::string& name, const std::string& text) {
  auto parsed = ParseSparql(name, text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return std::make_shared<GraphPatternQuery>(parsed.MoveValueUnsafe());
}

/// A dataset with one triple per distinct property p0..p(n-1), so each
/// single-property query has its own answers and its own cache key
/// (keys spread across cache shards by hash).
std::vector<Triple> FanoutTriples(int properties) {
  std::vector<Triple> triples;
  for (int i = 0; i < properties; ++i) {
    const std::string p = "p" + std::to_string(i);
    triples.push_back({"s" + std::to_string(i), p, "o" + std::to_string(i)});
    triples.push_back({"t" + std::to_string(i), p, "u" + std::to_string(i)});
  }
  return triples;
}

ServiceConfig StressConfig(uint32_t workers) {
  ServiceConfig config;
  config.cluster = RoomyCluster();
  config.max_concurrent = workers;
  // Plenty of queue so no stress request is ever rejected: the tests
  // below account for every submission.
  config.queue_bound = 4096;
  return config;
}

// Satellite: ServiceStatsSnapshot consistency. Eight threads hammer
// warm-result queries while the main thread snapshots concurrently; every
// snapshot must be internally consistent (hits + misses == lookups for
// both caches) and monotone field-by-field against the previous one.
// Before the atomics split this was impossible to guarantee: Stats()
// copied the struct under the same mutex the hot path mutated it under,
// but histogram counts and counters could still diverge via the
// service's multi-step updates.
TEST(ServiceStressTest, SnapshotsStayConsistentWhileHammered) {
  auto service = std::make_unique<QueryService>(StressConfig(8));
  ASSERT_TRUE(service->LoadDataset("d", FanoutTriples(4)).ok());
  auto query = MakeQuery("q", "SELECT * WHERE { ?s <p0> ?o . }");

  ServiceRequest request;
  request.dataset = "d";
  request.query = query;
  request.options.kind = EngineKind::kNtgaLazy;
  // Prime the result cache so the hammer below is all warm hits.
  ASSERT_TRUE(service->Query(request).ok());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 150;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> ok_count{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&service, &request, &ok_count] {
      for (int i = 0; i < kPerThread; ++i) {
        ServiceResponse response = service->Query(request);
        if (response.ok() && response.result_cache_hit) {
          ok_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  ServiceStatsSnapshot prev = service->Stats();
  uint64_t snapshots = 0;
  while (!done.load(std::memory_order_relaxed)) {
    ServiceStatsSnapshot now = service->Stats();
    ++snapshots;
    // Internal consistency: the derived lookup totals can never tear.
    EXPECT_EQ(now.plan_cache_hits + now.plan_cache_misses,
              now.plan_cache_lookups);
    EXPECT_EQ(now.result_cache_hits + now.result_cache_misses,
              now.result_cache_lookups);
    // Monotonicity: every counter only grows between snapshots.
    EXPECT_GE(now.submitted, prev.submitted);
    EXPECT_GE(now.served, prev.served);
    EXPECT_GE(now.failed, prev.failed);
    EXPECT_GE(now.rejected, prev.rejected);
    EXPECT_GE(now.cancelled, prev.cancelled);
    EXPECT_GE(now.deadline_expired, prev.deadline_expired);
    EXPECT_GE(now.plan_cache_hits, prev.plan_cache_hits);
    EXPECT_GE(now.plan_cache_misses, prev.plan_cache_misses);
    EXPECT_GE(now.result_cache_hits, prev.result_cache_hits);
    EXPECT_GE(now.result_cache_misses, prev.result_cache_misses);
    EXPECT_GE(now.exec_micros.count(), prev.exec_micros.count());
    EXPECT_GE(now.queue_wait_micros.count(), prev.queue_wait_micros.count());
    // Progress accounting never exceeds admissions.
    EXPECT_LE(now.served + now.failed + now.rejected + now.cancelled +
                  now.deadline_expired,
              now.submitted);
    prev = now;
    if (prev.served >= 1 + kThreads * kPerThread) {
      done.store(true, std::memory_order_relaxed);
    }
  }
  for (auto& client : clients) client.join();
  EXPECT_GT(snapshots, 0u);

  ServiceStatsSnapshot final_stats = service->Stats();
  EXPECT_EQ(ok_count.load(), uint64_t{kThreads * kPerThread});
  EXPECT_EQ(final_stats.submitted, uint64_t{1 + kThreads * kPerThread});
  EXPECT_EQ(final_stats.served, uint64_t{1 + kThreads * kPerThread});
  EXPECT_EQ(final_stats.result_cache_hits, uint64_t{kThreads * kPerThread});
  EXPECT_EQ(final_stats.result_cache_misses, 1u);
  EXPECT_EQ(final_stats.failed, 0u);
  EXPECT_EQ(final_stats.queued, 0u);
  EXPECT_EQ(final_stats.running, 0u);
}

// Tentpole proof at the unit level: 16 client threads on a 16-worker
// service, all warm result-cache hits over keys spread across shards.
// Under TSan this pins the claim that the warm path is data-race free
// with no service-wide lock; the answers must also stay byte-identical
// to the priming run's.
TEST(ServiceStressTest, SixteenWarmClientsNoRacesIdenticalAnswers) {
  constexpr int kQueries = 8;
  auto service = std::make_unique<QueryService>(StressConfig(16));
  ASSERT_TRUE(service->LoadDataset("d", FanoutTriples(kQueries)).ok());

  std::vector<std::shared_ptr<const GraphPatternQuery>> queries;
  std::vector<SolutionSet> expected;
  for (int i = 0; i < kQueries; ++i) {
    auto query = MakeQuery(
        "q" + std::to_string(i),
        "SELECT * WHERE { ?s <p" + std::to_string(i) + "> ?o . }");
    queries.push_back(query);
    ServiceRequest prime;
    prime.dataset = "d";
    prime.query = query;
    prime.options.kind = EngineKind::kNtgaLazy;
    ServiceResponse primed = service->Query(prime);
    ASSERT_TRUE(primed.ok()) << primed.status.ToString();
    EXPECT_EQ(primed.answer_set().size(), 2u);
    expected.push_back(primed.answer_set());
  }

  constexpr int kThreads = 16;
  constexpr int kPerThread = 100;
  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> misses{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int qi = (t + i) % kQueries;
        ServiceRequest request;
        request.dataset = "d";
        request.query = queries[qi];
        request.options.kind = EngineKind::kNtgaLazy;
        ServiceResponse response = service->Query(request);
        if (!response.ok() || !response.result_cache_hit) {
          misses.fetch_add(1, std::memory_order_relaxed);
        }
        if (response.answer_set() != expected[qi]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& client : clients) client.join();

  EXPECT_EQ(misses.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
  ServiceStatsSnapshot stats = service->Stats();
  EXPECT_EQ(stats.result_cache_hits, uint64_t{kThreads * kPerThread});
  EXPECT_EQ(stats.served, uint64_t{kQueries + kThreads * kPerThread});
  EXPECT_GE(stats.cache_shards, 16u);
}

// Warm hits must SHARE the cached answer snapshot, not deep-copy it into
// each response: 16 warm clients all receive a pointer to the SAME
// immutable SolutionSet (one O(1) refcount bump per hit), and each
// response serializes to byte-identical text. Before the shared_ptr
// snapshot, every warm hit copied the full answer set — O(answers) per
// client under the cache shard's lock.
TEST(ServiceStressTest, SixteenWarmClientsShareOneAnswerSnapshot) {
  auto service = std::make_unique<QueryService>(StressConfig(16));
  ASSERT_TRUE(service->LoadDataset("d", FanoutTriples(4)).ok());
  auto query = MakeQuery("q0", "SELECT * WHERE { ?s <p0> ?o . }");

  ServiceRequest request;
  request.dataset = "d";
  request.query = query;
  request.options.kind = EngineKind::kNtgaLazy;
  ServiceResponse primed = service->Query(request);
  ASSERT_TRUE(primed.ok()) << primed.status.ToString();
  ASSERT_NE(primed.answers, nullptr);
  ASSERT_EQ(primed.answer_set().size(), 2u);

  auto serialize = [](const SolutionSet& answers) {
    std::string out;
    for (const Solution& solution : answers) {
      out += solution.Serialize();
      out += '\n';
    }
    return out;
  };
  const std::string expected_bytes = serialize(primed.answer_set());

  constexpr int kThreads = 16;
  std::vector<std::shared_ptr<const SolutionSet>> seen(kThreads);
  std::vector<std::string> seen_bytes(kThreads);
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      ServiceResponse response = service->Query(request);
      if (response.ok() && response.result_cache_hit) {
        seen[t] = response.answers;
        seen_bytes[t] = serialize(response.answer_set());
      }
    });
  }
  for (auto& client : clients) client.join();

  for (int t = 0; t < kThreads; ++t) {
    ASSERT_NE(seen[t], nullptr) << "client " << t << " missed the cache";
    // Pointer equality IS the zero-copy claim: all 16 responses alias
    // the one cached set the priming run produced.
    EXPECT_EQ(seen[t].get(), primed.answers.get())
        << "client " << t << " received a deep copy";
    EXPECT_EQ(seen_bytes[t], expected_bytes) << "client " << t;
  }
}

// Epoch-bump invalidation must reach every shard: populate both caches
// with keys that cover many shards, reload (epoch bump) and drop, and
// require the entry gauges to fall to zero each time — a shard skipped by
// the prefix purge would leave residents behind.
TEST(ServiceStressTest, ReloadAndDropPurgeEveryShard) {
  constexpr int kQueries = 24;
  auto service = std::make_unique<QueryService>(StressConfig(4));
  ASSERT_TRUE(service->LoadDataset("d", FanoutTriples(kQueries)).ok());

  auto populate = [&] {
    for (int i = 0; i < kQueries; ++i) {
      ServiceRequest request;
      request.dataset = "d";
      request.query = MakeQuery(
          "q" + std::to_string(i),
          "SELECT * WHERE { ?s <p" + std::to_string(i) + "> ?o . }");
      request.options.kind = EngineKind::kNtgaLazy;
      ASSERT_TRUE(service->Query(request).ok());
    }
  };
  populate();
  ServiceStatsSnapshot warm = service->Stats();
  EXPECT_EQ(warm.plan_cache_entries, uint64_t{kQueries});
  EXPECT_EQ(warm.result_cache_entries, uint64_t{kQueries});
  EXPECT_GT(warm.result_cache_bytes, 0u);

  // Reload: epoch bumps, and the eager prefix purge must empty every
  // shard of both caches.
  ASSERT_TRUE(service->LoadDataset("d", FanoutTriples(kQueries)).ok());
  ServiceStatsSnapshot reloaded = service->Stats();
  EXPECT_EQ(reloaded.plan_cache_entries, 0u);
  EXPECT_EQ(reloaded.result_cache_entries, 0u);
  EXPECT_EQ(reloaded.result_cache_bytes, 0u);

  // Re-populate under the new epoch, then drop: same full purge.
  populate();
  EXPECT_EQ(service->Stats().result_cache_entries, uint64_t{kQueries});
  ASSERT_TRUE(service->DropDataset("d").ok());
  ServiceStatsSnapshot dropped = service->Stats();
  EXPECT_EQ(dropped.plan_cache_entries, 0u);
  EXPECT_EQ(dropped.result_cache_entries, 0u);
  EXPECT_EQ(dropped.result_cache_bytes, 0u);
}

}  // namespace
}  // namespace service
}  // namespace rdfmr
