// TCP twin of service_socket_test: the query service served over
// tcp:127.0.0.1 must give byte-identical answers to direct RunQuery, a
// pipelined client with 8 requests in flight on one connection must get
// every answer (correlated by id; terse requests lose exactly the
// diagnostic members), requests fan out across AF_UNIX and
// TCP simultaneously, and — since the transport is one event loop, not a
// thread per connection — the process thread count must stay flat across
// many connect/disconnect cycles.

#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/strings.h"
#include "net/address.h"
#include "service/client.h"
#include "service/query_service.h"
#include "service/server.h"
#include "tests/test_util.h"

namespace rdfmr {
namespace service {
namespace {

using testing_util::MakeDfsWithBase;
using testing_util::RoomyCluster;
using testing_util::SmallDataset;

std::string TestSocketPath(const char* tag) {
  return StringFormat("/tmp/rdfmr-tcp-%s-%d.sock", tag,
                      static_cast<int>(::getpid()));
}

/// Live thread count of this process, straight from /proc/self/task.
int CountThreads() {
  DIR* dir = ::opendir("/proc/self/task");
  if (dir == nullptr) return -1;
  int count = 0;
  while (dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] != '.') ++count;
  }
  ::closedir(dir);
  return count;
}

std::vector<std::string> AnswerLines(const SolutionSet& answers) {
  std::vector<std::string> lines;
  lines.reserve(answers.size());
  for (const Solution& solution : answers) {
    lines.push_back(solution.Serialize());
  }
  return lines;
}

std::vector<std::string> AnswerLines(const JsonValue& array) {
  std::vector<std::string> lines;
  if (!array.is_array()) return lines;
  lines.reserve(array.AsArray().size());
  for (const JsonValue& line : array.AsArray()) {
    lines.push_back(line.AsString());
  }
  return lines;
}

/// Ground truth per catalog query id: direct RunQuery on a private DFS.
std::map<std::string, std::vector<std::string>> DirectAnswers(
    const std::vector<Triple>& triples,
    const std::vector<std::string>& query_ids) {
  EngineOptions options;
  options.kind = EngineKind::kNtgaLazy;
  std::map<std::string, std::vector<std::string>> expected;
  auto dfs = MakeDfsWithBase(triples);
  EXPECT_NE(dfs, nullptr);
  for (const std::string& id : query_ids) {
    auto query = GetTestbedQuery(id);
    EXPECT_TRUE(query.ok());
    auto direct = RunQuery(dfs.get(), "base", *query, options);
    EXPECT_TRUE(direct.ok()) << direct.status().ToString();
    expected[id] = AnswerLines(direct->answers);
    EXPECT_FALSE(expected[id].empty()) << id;
  }
  return expected;
}

JsonValue QueryRequest(const std::string& id) {
  JsonValue request = JsonValue::MakeObject();
  request.Set("verb", "query");
  request.Set("dataset", "bsbm");
  request.Set("query_id", id);
  request.Set("engine", "lazy");
  return request;
}

TEST(ServiceTcpTest, PipelinedTcpClientsMatchDirectRuns) {
  const std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  const std::vector<std::string> query_ids = {"B0", "B1", "B4"};
  const auto expected = DirectAnswers(triples, query_ids);

  ServiceConfig config;
  config.cluster = RoomyCluster();
  config.max_concurrent = 4;
  QueryService query_service(config);
  ASSERT_TRUE(query_service.LoadDataset("bsbm", triples).ok());

  ServerOptions server_options;
  server_options.listeners.push_back(net::Address::Tcp("127.0.0.1", 0));
  ServiceServer server(&query_service, std::move(server_options));
  ASSERT_TRUE(server.Start().ok());
  ASSERT_EQ(server.bound_addresses().size(), 1u);
  const std::string target = server.bound_addresses()[0].ToString();
  ASSERT_TRUE(StartsWith(target, "tcp:127.0.0.1:"));

  // 8 requests in flight on ONE connection; CallPipelined re-matches the
  // completion-ordered responses to request order by echoed id.
  auto client = ServiceClient::Connect(target);
  ASSERT_TRUE(client.ok());
  // Odd requests go terse: same answers, diagnostic members stripped.
  std::vector<JsonValue> requests;
  for (int i = 0; i < 8; ++i) {
    JsonValue request = QueryRequest(query_ids[i % query_ids.size()]);
    if (i % 2 == 1) request.Set("terse", true);
    requests.push_back(std::move(request));
  }
  auto responses = client->CallPipelined(std::move(requests));
  ASSERT_TRUE(responses.ok()) << responses.status().ToString();
  ASSERT_EQ(responses->size(), 8u);
  for (int i = 0; i < 8; ++i) {
    const JsonValue& response = (*responses)[i];
    ASSERT_TRUE(response.GetBool("ok")) << response.Dump();
    const std::string& id = query_ids[i % query_ids.size()];
    EXPECT_EQ(AnswerLines(response.Get("answers")), expected.at(id))
        << "pipelined response " << i << " (" << id
        << ") diverges from direct RunQuery";
    EXPECT_EQ(response.Has("stats"), i % 2 == 0) << response.Dump();
    EXPECT_EQ(response.Has("exec_micros"), i % 2 == 0);
    EXPECT_EQ(response.Has("result_cache_hit"), i % 2 == 0);
    EXPECT_TRUE(response.Has("num_answers"));
  }

  // Serial TCP clients on fresh connections agree too.
  for (const std::string& id : query_ids) {
    auto serial = ServiceClient::Connect(target);
    ASSERT_TRUE(serial.ok());
    auto response = serial->Call(QueryRequest(id));
    ASSERT_TRUE(response.ok());
    ASSERT_TRUE(response->GetBool("ok")) << response->Dump();
    EXPECT_EQ(AnswerLines(response->Get("answers")), expected.at(id));
  }
  server.Stop();
  EXPECT_TRUE(server.stopped());
}

TEST(ServiceTcpTest, UnixAndTcpServeIdenticalAnswersSimultaneously) {
  const std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  ServiceConfig config;
  config.cluster = RoomyCluster();
  config.max_concurrent = 2;
  QueryService query_service(config);
  ASSERT_TRUE(query_service.LoadDataset("bsbm", triples).ok());

  ServerOptions server_options;
  server_options.listeners.push_back(
      net::Address::Unix(TestSocketPath("dual")));
  server_options.listeners.push_back(net::Address::Tcp("127.0.0.1", 0));
  ServiceServer server(&query_service, std::move(server_options));
  ASSERT_TRUE(server.Start().ok());
  ASSERT_EQ(server.bound_addresses().size(), 2u);
  EXPECT_EQ(server.socket_path(), TestSocketPath("dual"));

  // Answers (and counts) must be byte-identical across the transports;
  // timings and cache-hit flags legitimately differ between the calls.
  std::vector<std::vector<std::string>> answers;
  for (const net::Address& address : server.bound_addresses()) {
    auto client = ServiceClient::Connect(address.ToString());
    ASSERT_TRUE(client.ok()) << address.ToString();
    auto response = client->Call(QueryRequest("B0"));
    ASSERT_TRUE(response.ok());
    ASSERT_TRUE(response->GetBool("ok")) << response->Dump();
    EXPECT_GT(response->GetUint("num_answers"), 0u);
    answers.push_back(AnswerLines(response->Get("answers")));
  }
  ASSERT_EQ(answers.size(), 2u);
  EXPECT_EQ(answers[0], answers[1]);
  server.Stop();
}

TEST(ServiceTcpTest, ThreadCountStaysFlatAcrossConnectionChurn) {
  ServiceConfig config;
  config.cluster = RoomyCluster();
  config.max_concurrent = 2;
  QueryService query_service(config);
  ASSERT_TRUE(
      query_service.LoadDataset("bsbm", SmallDataset(DatasetFamily::kBsbm))
          .ok());

  ServerOptions server_options;
  server_options.listeners.push_back(net::Address::Tcp("127.0.0.1", 0));
  ServiceServer server(&query_service, std::move(server_options));
  ASSERT_TRUE(server.Start().ok());
  const std::string target = server.bound_addresses()[0].ToString();

  // Warm up: the worker pool and event loop exist after the first query.
  {
    auto client = ServiceClient::Connect(target);
    ASSERT_TRUE(client.ok());
    auto response = client->Call(QueryRequest("B0"));
    ASSERT_TRUE(response.ok());
    ASSERT_TRUE(response->GetBool("ok"));
  }
  const int baseline = CountThreads();
  ASSERT_GT(baseline, 0);

  // 24 connect/query/disconnect cycles: a thread-per-connection design
  // leaks a joinable thread per cycle until Stop; the event loop must
  // hold the count exactly flat.
  for (int cycle = 0; cycle < 24; ++cycle) {
    auto client = ServiceClient::Connect(target);
    ASSERT_TRUE(client.ok());
    auto response = client->Call(QueryRequest("B0"));
    ASSERT_TRUE(response.ok());
    ASSERT_TRUE(response->GetBool("ok"));
  }
  EXPECT_EQ(CountThreads(), baseline);
  EXPECT_GE(server.transport_stats().accepted, 25u);
  server.Stop();
}

TEST(ServiceTcpTest, ConnectWithRetryWaitsForLateServer) {
  ServiceConfig config;
  config.cluster = RoomyCluster();
  QueryService query_service(config);

  const std::string socket_path = TestSocketPath("retry");
  ::unlink(socket_path.c_str());
  ServiceServer server(&query_service, socket_path);

  // Start the server only after the client has begun retrying.
  std::thread late_starter([&server] {
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    ASSERT_TRUE(server.Start().ok());
  });
  auto client = ServiceClient::ConnectWithRetry("unix:" + socket_path,
                                                /*attempts=*/8,
                                                /*backoff_ms=*/25);
  late_starter.join();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  JsonValue ping = JsonValue::MakeObject();
  ping.Set("verb", "ping");
  auto response = client->Call(ping);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->GetBool("ok"));

  // One attempt against a dead endpoint still fails fast.
  auto dead = ServiceClient::ConnectWithRetry(
      "unix:" + TestSocketPath("nobody"), /*attempts=*/1);
  EXPECT_FALSE(dead.ok());
  server.Stop();
}

}  // namespace
}  // namespace service
}  // namespace rdfmr
