// Tests for the concurrent query service: the LRU cache and histogram
// primitives it is built on, the dataset registry's lazy-load / epoch
// semantics, cache keys, and — the core contract — that answers and all
// deterministic ExecStats fields served through QueryService are
// byte-identical to direct RunQuery / RunQueryBatch / RunUnionQuery calls
// at any worker count, with plan- and result-cache hits, admission
// rejections, cancellation, and deadline expiry all observable.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "common/json.h"
#include "common/lru_cache.h"
#include "common/sharded_lru_cache.h"
#include "query/matcher.h"
#include "query/sparql_parser.h"
#include "service/protocol.h"
#include "service/query_service.h"
#include "tests/test_util.h"

namespace rdfmr {
namespace service {
namespace {

using testing_util::MakeDfsWithBase;
using testing_util::RoomyCluster;
using testing_util::SmallDataset;

// ---- LRU cache -------------------------------------------------------------

TEST(LruCacheTest, PutGetRecencyAndEviction) {
  LruCache<int> cache(10);
  EXPECT_TRUE(cache.Put("a", 1, 4));
  EXPECT_TRUE(cache.Put("b", 2, 4));
  ASSERT_NE(cache.Get("a"), nullptr);
  EXPECT_EQ(*cache.Get("a"), 1);
  EXPECT_EQ(cache.used(), 8u);

  // "a" was refreshed, so inserting "c" (charge 4) evicts "b".
  EXPECT_TRUE(cache.Put("c", 3, 4));
  EXPECT_EQ(cache.Get("b"), nullptr);
  ASSERT_NE(cache.Get("a"), nullptr);
  ASSERT_NE(cache.Get("c"), nullptr);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.used(), 8u);
}

TEST(LruCacheTest, ReplaceUpdatesCharge) {
  LruCache<int> cache(10);
  EXPECT_TRUE(cache.Put("a", 1, 8));
  EXPECT_TRUE(cache.Put("a", 2, 3));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.used(), 3u);
  EXPECT_EQ(*cache.Get("a"), 2);
}

TEST(LruCacheTest, OversizedEntryRefused) {
  LruCache<int> cache(4);
  EXPECT_FALSE(cache.Put("big", 1, 5));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.used(), 0u);
  // A refused Put still removes any previous entry under that key.
  EXPECT_TRUE(cache.Put("k", 1, 2));
  EXPECT_FALSE(cache.Put("k", 2, 9));
  EXPECT_EQ(cache.Get("k"), nullptr);
}

TEST(LruCacheTest, EraseAndEraseIf) {
  LruCache<int> cache(100);
  EXPECT_TRUE(cache.Put("x\x1f""1", 1, 1));
  EXPECT_TRUE(cache.Put("x\x1f""2", 2, 1));
  EXPECT_TRUE(cache.Put("y\x1f""1", 3, 1));
  EXPECT_TRUE(cache.Erase("x\x1f""1"));
  EXPECT_FALSE(cache.Erase("x\x1f""1"));
  EXPECT_EQ(cache.EraseIf([](const std::string& key) {
              return key.rfind("x\x1f", 0) == 0;
            }),
            1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.used(), 1u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.used(), 0u);
}

// Charge accounting across overwrite: the old entry's charge must be
// released BEFORE the new charge lands, so eviction decisions never see a
// stale total. With capacity 10 and {a:4, b:4} resident, overwriting a
// with charge 6 totals 4+6=10 — nothing may be evicted. A stale total
// (4+4+6=14) would wrongly evict b.
TEST(LruCacheTest, OverwriteReleasesOldChargeBeforeEviction) {
  LruCache<int> cache(10);
  EXPECT_TRUE(cache.Put("a", 1, 4));
  EXPECT_TRUE(cache.Put("b", 2, 4));
  EXPECT_EQ(cache.used(), 8u);
  EXPECT_TRUE(cache.Put("a", 3, 6));
  EXPECT_EQ(cache.used(), 10u);
  EXPECT_EQ(cache.size(), 2u);
  ASSERT_NE(cache.Get("b"), nullptr) << "eviction ran on a stale total";
  ASSERT_NE(cache.Get("a"), nullptr);
  EXPECT_EQ(*cache.Get("a"), 3);

  // Growing past capacity evicts exactly the LRU entry, with the
  // post-release total: overwriting b (LRU after the Gets above refreshed
  // a... order: b then a, so b is MRU) — refresh a last, then overwrite
  // it to charge 8: total 8+4 > 10 evicts b alone.
  EXPECT_TRUE(cache.Put("a", 4, 8));
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_EQ(cache.used(), 8u);
  EXPECT_EQ(cache.size(), 1u);
}

// ---- Sharded LRU cache -----------------------------------------------------

// Builds `count` keys that all land in `want_shard` (or, with
// `want_shard < 0`, one key per distinct shard).
std::vector<std::string> KeysInShard(
    const ShardedLruCache<int>& cache, size_t want_shard, size_t count) {
  std::vector<std::string> keys;
  for (int i = 0; keys.size() < count; ++i) {
    std::string key = "k" + std::to_string(i);
    if (cache.ShardOf(key) == want_shard) keys.push_back(key);
  }
  return keys;
}

TEST(ShardedLruCacheTest, RoundsShardsToPowerOfTwo) {
  ShardedLruCache<int> cache(64, 3);
  EXPECT_EQ(cache.num_shards(), 4u);
  EXPECT_EQ(cache.capacity(), 64u);
  ShardedLruCache<int> one(64, 0);
  EXPECT_EQ(one.num_shards(), 1u);
}

TEST(ShardedLruCacheTest, GetPutEraseAcrossShards) {
  ShardedLruCache<int> cache(1024, 8);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(cache.Put("key" + std::to_string(i), i, 1));
  }
  EXPECT_EQ(cache.size(), 50u);
  EXPECT_EQ(cache.used(), 50u);
  int value = -1;
  ASSERT_TRUE(cache.Get("key7", &value));
  EXPECT_EQ(value, 7);
  EXPECT_FALSE(cache.Get("absent", &value));
  EXPECT_EQ(value, 7) << "miss must leave *out untouched";
  EXPECT_TRUE(cache.Erase("key7"));
  EXPECT_FALSE(cache.Erase("key7"));
  EXPECT_EQ(cache.size(), 49u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.used(), 0u);
}

// The charge budget is global across shards: inserts past the capacity
// evict (approximately-LRU, round-robin over shards) until the total
// fits again, never skipping it, and the freshly inserted entry's shard
// is not the first victim.
TEST(ShardedLruCacheTest, GlobalBudgetEvictionAcrossShards) {
  ShardedLruCache<int> cache(32, 4);
  const std::vector<std::string> in_shard0 = KeysInShard(cache, 0, 5);
  const std::vector<std::string> in_shard1 = KeysInShard(cache, 1, 4);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(cache.Put(in_shard0[i], 1, 4));
    EXPECT_TRUE(cache.Put(in_shard1[i], 1, 4));
  }
  EXPECT_EQ(cache.used(), 32u);  // exactly at budget, nothing evicted
  EXPECT_EQ(cache.size(), 8u);

  // One more 4-charge insert into shard 0: the budget forces exactly one
  // eviction, taken from another shard — every shard-0 entry (including
  // the new one) survives.
  EXPECT_TRUE(cache.Put(in_shard0[4], 1, 4));
  EXPECT_EQ(cache.used(), 32u);
  EXPECT_EQ(cache.size(), 8u);
  int value = 0;
  for (const std::string& key : in_shard0) {
    EXPECT_TRUE(cache.Get(key, &value)) << key;
  }
}

// Admission matches the unsharded LruCache regardless of shard count: an
// entry is refused only when it exceeds the WHOLE budget (a refused Put
// still drops the previous entry under that key). A per-shard capacity
// slice would shrink as shards scale with workers and silently refuse
// large entries — the bug that made bench_service's biggest answer set
// uncacheable at 16 workers.
TEST(ShardedLruCacheTest, LargeEntriesAdmittedUpToWholeBudget) {
  ShardedLruCache<int> cache(32, 4);
  EXPECT_TRUE(cache.Put("big", 1, 30));  // far beyond a 32/4 slice
  int value = 0;
  ASSERT_TRUE(cache.Get("big", &value));
  EXPECT_EQ(value, 1);
  EXPECT_EQ(cache.used(), 30u);

  // A second large entry in some other shard displaces the first.
  std::string other = KeysInShard(cache, cache.ShardOf("big") ^ 1, 1)[0];
  EXPECT_TRUE(cache.Put(other, 2, 30));
  EXPECT_TRUE(cache.Get(other, &value));
  EXPECT_FALSE(cache.Get("big", &value));
  EXPECT_EQ(cache.used(), 30u);

  // Larger than the whole budget: refused, previous entry dropped.
  EXPECT_FALSE(cache.Put(other, 3, 33));
  EXPECT_FALSE(cache.Get(other, &value));
  EXPECT_EQ(cache.used(), 0u);
}

// Satellite regression: total used() is pinned across overwrite and
// prefix purge — the overwrite releases the old charge first, the purge
// releases exactly the purged keys' charges, shard by shard.
TEST(ShardedLruCacheTest, OverwriteAndPrefixPurgeChargeAccounting) {
  ShardedLruCache<int> cache(1 << 20, 8);
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(cache.Put("d\x1f" + std::to_string(i), i, 100));
  }
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(cache.Put("e\x1f" + std::to_string(i), i, 10));
  }
  EXPECT_EQ(cache.used(), 16u * 100 + 16u * 10);
  // Overwrite every d-entry with a smaller charge: totals shrink by
  // exactly the delta, entry count unchanged.
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(cache.Put("d\x1f" + std::to_string(i), i, 40));
  }
  EXPECT_EQ(cache.used(), 16u * 40 + 16u * 10);
  EXPECT_EQ(cache.size(), 32u);
  // Purge one dataset's prefix across all shards; the other dataset's
  // charges are untouched.
  EXPECT_EQ(cache.EraseByPrefix("d\x1f"), 16u);
  EXPECT_EQ(cache.used(), 16u * 10);
  EXPECT_EQ(cache.size(), 16u);
  EXPECT_EQ(cache.EraseByPrefix("d\x1f"), 0u);
}

TEST(ShardedLruCacheTest, EraseByPrefixSweepsEveryShard) {
  ShardedLruCache<int> cache(1 << 20, 16);
  // One entry per shard under the same dataset prefix: the purge must
  // visit all 16 shards to find them.
  std::vector<bool> covered(cache.num_shards(), false);
  size_t distinct = 0;
  for (int i = 0; distinct < cache.num_shards(); ++i) {
    std::string key = "ds\x1f" + std::to_string(i);
    if (!covered[cache.ShardOf(key)]) {
      covered[cache.ShardOf(key)] = true;
      ++distinct;
      EXPECT_TRUE(cache.Put(std::move(key), i, 1));
    }
  }
  EXPECT_EQ(cache.size(), cache.num_shards());
  EXPECT_EQ(cache.EraseByPrefix("ds\x1f"), cache.num_shards());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.used(), 0u);
}

// ---- Histogram -------------------------------------------------------------

TEST(HistogramTest, CountsAndPercentiles) {
  Histogram h;
  EXPECT_EQ(h.Percentile(50), 0u);
  for (uint64_t v : {0ull, 1ull, 2ull, 3ull, 100ull}) h.Add(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 106u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.Mean(), 106.0 / 5.0);
  // Percentiles are bucket upper bounds, clamped to the observed max.
  EXPECT_EQ(h.Percentile(0), 0u);
  EXPECT_LE(h.Percentile(50), 3u);
  EXPECT_EQ(h.Percentile(100), 100u);

  Histogram other;
  other.Add(7);
  h.Merge(other);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 113u);

  auto json = ParseJson(h.ToJson());
  ASSERT_TRUE(json.ok());
  EXPECT_EQ(json->GetUint("count"), 6u);
  EXPECT_EQ(json->GetUint("sum"), 113u);
}

TEST(AtomicHistogramTest, LosslessUnderConcurrentAdds) {
  AtomicHistogram hist;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        hist.Add(static_cast<uint64_t>(t) * 1000 + (i % 7));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  Histogram folded = hist.Snapshot();
  EXPECT_EQ(folded.count(), kThreads * kPerThread);
  EXPECT_EQ(folded.min(), 0u);
  EXPECT_EQ(folded.max(), 7006u);
  uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (uint64_t i = 0; i < kPerThread; ++i) {
      expected_sum += static_cast<uint64_t>(t) * 1000 + (i % 7);
    }
  }
  EXPECT_EQ(folded.sum(), expected_sum);
}

// ---- Dataset registry ------------------------------------------------------

std::vector<Triple> TinyTriples() {
  return {{"a", "p", "b"}, {"a", "q", "c"}, {"b", "p", "c"}};
}

TEST(DatasetRegistryTest, LazyLoadRunsLoaderOnce) {
  DatasetRegistry registry(RoomyCluster());
  std::atomic<int> loads{0};
  auto info = registry.Register("d", [&]() -> Result<std::vector<Triple>> {
    ++loads;
    return TinyTriples();
  });
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(info->loaded);
  EXPECT_EQ(loads.load(), 0);

  auto first = registry.Acquire("d");
  ASSERT_TRUE(first.ok());
  auto second = registry.Acquire("d");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(loads.load(), 1);
  EXPECT_EQ((*first)->Info().num_triples, 3u);
  EXPECT_TRUE((*first)->Info().loaded);
  EXPECT_NE((*first)->dfs(), nullptr);
  // Both acquisitions share the one materialized base.
  EXPECT_EQ((*first)->dfs(), (*second)->dfs());
}

TEST(DatasetRegistryTest, EpochsAdvanceAcrossReloadAndRegistry) {
  DatasetRegistry registry(RoomyCluster());
  auto a = registry.Load("a", TinyTriples());
  ASSERT_TRUE(a.ok());
  auto b = registry.Load("b", TinyTriples());
  ASSERT_TRUE(b.ok());
  EXPECT_LT(a->epoch, b->epoch);

  auto a2 = registry.Load("a", TinyTriples());
  ASSERT_TRUE(a2.ok());
  EXPECT_LT(b->epoch, a2->epoch);
  EXPECT_EQ(registry.Epoch("a"), a2->epoch);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(DatasetRegistryTest, DropKeepsAcquiredHandlesAlive) {
  DatasetRegistry registry(RoomyCluster());
  ASSERT_TRUE(registry.Load("d", TinyTriples()).ok());
  auto handle = registry.Acquire("d");
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(registry.Drop("d").ok());
  EXPECT_EQ(registry.Drop("d").code(), StatusCode::kNotFound);
  EXPECT_EQ(registry.Acquire("d").status().code(), StatusCode::kNotFound);
  // The handle acquired before the drop still serves reads.
  EXPECT_EQ((*handle)->Info().num_triples, 3u);
  EXPECT_NE((*handle)->dfs(), nullptr);
}

TEST(DatasetRegistryTest, LoaderFailureIsCachedNotRetried) {
  DatasetRegistry registry(RoomyCluster());
  std::atomic<int> loads{0};
  ASSERT_TRUE(registry
                  .Register("bad",
                            [&]() -> Result<std::vector<Triple>> {
                              ++loads;
                              return Status::IoError("disk on fire");
                            })
                  .ok());
  EXPECT_FALSE(registry.Acquire("bad").ok());
  EXPECT_FALSE(registry.Acquire("bad").ok());
  EXPECT_EQ(loads.load(), 1);
}

// ---- Cache keys ------------------------------------------------------------

std::shared_ptr<const GraphPatternQuery> MakeQuery(
    const std::string& name, const std::string& text) {
  auto parsed = ParseSparql(name, text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return std::make_shared<GraphPatternQuery>(parsed.MoveValueUnsafe());
}

TEST(CacheKeyTest, ThreadsExcludedOptionsAndEpochIncluded) {
  ServiceRequest request;
  request.dataset = "d";
  request.query = MakeQuery("q", "SELECT * WHERE { ?s ?p ?o . }");

  EngineOptions a = request.options;
  EngineOptions b = request.options;
  b.runtime.num_threads = 4;
  EXPECT_EQ(EngineOptionsFingerprint(a), EngineOptionsFingerprint(b));
  b.phi_partitions = a.phi_partitions + 1;
  EXPECT_NE(EngineOptionsFingerprint(a), EngineOptionsFingerprint(b));
  b = a;
  b.kind = EngineKind::kHive;
  EXPECT_NE(EngineOptionsFingerprint(a), EngineOptionsFingerprint(b));

  const std::string key_epoch1 = RequestCacheKey(request, 1);
  EXPECT_NE(key_epoch1, RequestCacheKey(request, 2));
  EXPECT_EQ(key_epoch1.rfind("d\x1f", 0), 0u);
}

TEST(CacheKeyTest, CanonicalTextIgnoresQueryNames) {
  ServiceRequest a;
  a.query = MakeQuery("first", "SELECT * WHERE { ?s <p> ?o . ?s ?q ?x . }");
  ServiceRequest b;
  b.query = MakeQuery("second", "SELECT * WHERE { ?s <p> ?o . ?s ?q ?x . }");
  EXPECT_EQ(CanonicalQueryText(a), CanonicalQueryText(b));

  ServiceRequest c;
  c.query = MakeQuery("third", "SELECT * WHERE { ?s <p> ?o . }");
  EXPECT_NE(CanonicalQueryText(a), CanonicalQueryText(c));

  // An aggregate changes the canonical text even over the same BGP.
  ServiceRequest d = a;
  AggregateSpec spec;
  spec.group_vars = {"s"};
  spec.counted_var = "q";
  d.aggregate = spec;
  EXPECT_NE(CanonicalQueryText(a), CanonicalQueryText(d));
}

// ---- Service equivalence ---------------------------------------------------

// Compares every deterministic field of two ExecStats (the *_seconds wall
// times are the documented exception).
void ExpectSameStats(const ExecStats& a, const ExecStats& b) {
  EXPECT_EQ(a.engine, b.engine);
  EXPECT_EQ(a.query, b.query);
  EXPECT_EQ(a.status.code(), b.status.code());
  EXPECT_EQ(a.failed_job_index, b.failed_job_index);
  EXPECT_EQ(a.mr_cycles, b.mr_cycles);
  EXPECT_EQ(a.planned_cycles, b.planned_cycles);
  EXPECT_EQ(a.full_scans, b.full_scans);
  EXPECT_EQ(a.hdfs_read_bytes, b.hdfs_read_bytes);
  EXPECT_EQ(a.hdfs_write_bytes, b.hdfs_write_bytes);
  EXPECT_EQ(a.hdfs_write_bytes_replicated, b.hdfs_write_bytes_replicated);
  EXPECT_EQ(a.shuffle_bytes, b.shuffle_bytes);
  EXPECT_EQ(a.star_phase_write_bytes, b.star_phase_write_bytes);
  EXPECT_EQ(a.intermediate_write_bytes, b.intermediate_write_bytes);
  EXPECT_EQ(a.final_output_bytes, b.final_output_bytes);
  EXPECT_EQ(a.peak_dfs_used_bytes, b.peak_dfs_used_bytes);
  EXPECT_DOUBLE_EQ(a.redundancy_factor, b.redundancy_factor);
  EXPECT_DOUBLE_EQ(a.final_redundancy_factor, b.final_redundancy_factor);
  EXPECT_DOUBLE_EQ(a.modeled_seconds, b.modeled_seconds);
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.jobs.size(), b.jobs.size());
}

std::unique_ptr<QueryService> MakeService(uint32_t max_concurrent = 2) {
  ServiceConfig config;
  config.cluster = RoomyCluster();
  config.max_concurrent = max_concurrent;
  return std::make_unique<QueryService>(config);
}

TEST(ServiceEquivalenceTest, SingleQueryMatchesDirectRun) {
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  auto query = GetTestbedQuery("B1");
  ASSERT_TRUE(query.ok());

  for (EngineKind kind : {EngineKind::kNtgaLazy, EngineKind::kHive}) {
    for (uint32_t threads : {1u, 4u}) {
      auto service = MakeService();
      ASSERT_TRUE(service->LoadDataset("bsbm", triples).ok());

      ServiceRequest request;
      request.dataset = "bsbm";
      request.query = *query;
      request.options.kind = kind;
      request.options.runtime.num_threads = threads;
      ServiceResponse response = service->Query(request);
      ASSERT_TRUE(response.ok()) << response.status.ToString();
      ASSERT_TRUE(response.stats.ok()) << response.stats.status.ToString();
      EXPECT_FALSE(response.plan_cache_hit);
      EXPECT_FALSE(response.result_cache_hit);
      EXPECT_GT(response.epoch, 0u);

      auto dfs = MakeDfsWithBase(triples);
      ASSERT_NE(dfs, nullptr);
      auto direct = RunQuery(dfs.get(), "base", *query, request.options);
      ASSERT_TRUE(direct.ok());
      EXPECT_EQ(response.answer_set(), direct->answers)
          << EngineKindToString(kind) << " @" << threads << " threads";
      ExpectSameStats(response.stats, direct->stats);
    }
  }
}

TEST(ServiceEquivalenceTest, AggregateMatchesDirectRun) {
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  auto query = MakeQuery("degree", "SELECT * WHERE { ?s ?p ?o . }");
  AggregateSpec spec;
  spec.group_vars = {"s"};
  spec.counted_var = "p";
  spec.count_var = "n";
  spec.min_count = 2;

  auto service = MakeService();
  ASSERT_TRUE(service->LoadDataset("bsbm", triples).ok());
  ServiceRequest request;
  request.dataset = "bsbm";
  request.query = query;
  request.aggregate = spec;
  request.options.kind = EngineKind::kNtgaLazy;
  ServiceResponse response = service->Query(request);
  ASSERT_TRUE(response.ok()) << response.status.ToString();
  ASSERT_TRUE(response.stats.ok());

  auto dfs = MakeDfsWithBase(triples);
  ASSERT_NE(dfs, nullptr);
  auto direct =
      RunAggregateQuery(dfs.get(), "base", query, spec, request.options);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(response.answer_set(), direct->answers);
  ExpectSameStats(response.stats, direct->stats);
  EXPECT_EQ(response.answer_set(),
            EvaluateAggregateInMemory(*query, spec, triples));
}

TEST(ServiceEquivalenceTest, BatchAndUnionMatchDirectRuns) {
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  std::vector<std::shared_ptr<const GraphPatternQuery>> queries;
  for (const char* id : {"B0", "B1", "B4"}) {
    auto q = GetTestbedQuery(id);
    ASSERT_TRUE(q.ok());
    queries.push_back(*q);
  }

  for (uint32_t threads : {1u, 4u}) {
    auto service = MakeService();
    ASSERT_TRUE(service->LoadDataset("bsbm", triples).ok());

    ServiceRequest request;
    request.dataset = "bsbm";
    request.batch = queries;
    request.options.kind = EngineKind::kNtgaLazy;
    request.options.runtime.num_threads = threads;
    ServiceResponse batched = service->Query(request);
    ASSERT_TRUE(batched.ok()) << batched.status.ToString();
    ASSERT_TRUE(batched.stats.ok());

    auto dfs = MakeDfsWithBase(triples);
    ASSERT_NE(dfs, nullptr);
    auto direct = RunQueryBatch(dfs.get(), "base", queries, request.options);
    ASSERT_TRUE(direct.ok());
    ASSERT_EQ(batched.batch_answer_sets().size(), queries.size());
    EXPECT_EQ(batched.batch_answer_sets(), direct->answers);
    ExpectSameStats(batched.stats, direct->stats);

    request.batch_mode = BatchMode::kUnion;
    ServiceResponse unioned = service->Query(request);
    ASSERT_TRUE(unioned.ok()) << unioned.status.ToString();
    ASSERT_TRUE(unioned.stats.ok());
    auto direct_union =
        RunUnionQuery(dfs.get(), "base", queries, request.options);
    ASSERT_TRUE(direct_union.ok());
    EXPECT_EQ(unioned.answer_set(), direct_union->answers);
    ExpectSameStats(unioned.stats, direct_union->stats);
  }
}

// ---- Cache behavior --------------------------------------------------------

TEST(ServiceCacheTest, PlanAndResultCacheHitsObservable) {
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  auto service = MakeService();
  ASSERT_TRUE(service->LoadDataset("bsbm", triples).ok());
  auto query = GetTestbedQuery("B1");
  ASSERT_TRUE(query.ok());

  ServiceRequest request;
  request.dataset = "bsbm";
  request.query = *query;
  request.options.kind = EngineKind::kNtgaLazy;

  ServiceResponse cold = service->Query(request);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold.plan_cache_hit);
  EXPECT_FALSE(cold.result_cache_hit);

  // A result-cache hit short-circuits plan lookup, so observe the plan
  // cache by bypassing the result cache.
  ServiceRequest no_results = request;
  no_results.use_result_cache = false;
  ServiceResponse replan = service->Query(no_results);
  ASSERT_TRUE(replan.ok());
  EXPECT_TRUE(replan.plan_cache_hit);
  EXPECT_FALSE(replan.result_cache_hit);
  EXPECT_EQ(replan.answer_set(), cold.answer_set());
  ExpectSameStats(replan.stats, cold.stats);

  ServiceResponse warm = service->Query(request);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.result_cache_hit);
  EXPECT_EQ(warm.answer_set(), cold.answer_set());
  ExpectSameStats(warm.stats, cold.stats);

  // A renamed but structurally identical query shares both caches; its
  // stats still carry the request's own name.
  auto renamed = std::make_shared<GraphPatternQuery>(
      *GraphPatternQuery::Create("other-name", (*query)->patterns()));
  ServiceRequest alias = request;
  alias.query = renamed;
  ServiceResponse aliased = service->Query(alias);
  ASSERT_TRUE(aliased.ok());
  EXPECT_TRUE(aliased.result_cache_hit);
  EXPECT_EQ(aliased.answer_set(), cold.answer_set());
  EXPECT_EQ(aliased.stats.query, "other-name");

  ServiceStatsSnapshot stats = service->Stats();
  EXPECT_GT(stats.plan_cache_hits, 0u);
  EXPECT_GT(stats.result_cache_hits, 0u);
  EXPECT_GT(stats.plan_cache_entries, 0u);
  EXPECT_GT(stats.result_cache_entries, 0u);
  EXPECT_GT(stats.result_cache_bytes, 0u);
  EXPECT_EQ(stats.served, 4u);
  EXPECT_EQ(stats.submitted, 4u);
}

TEST(ServiceCacheTest, ReloadBumpsEpochAndInvalidates) {
  auto service = MakeService();
  ASSERT_TRUE(service->LoadDataset("d", TinyTriples()).ok());
  auto query = MakeQuery("q", "SELECT * WHERE { ?s ?p ?o . }");

  ServiceRequest request;
  request.dataset = "d";
  request.query = query;
  request.options.kind = EngineKind::kNtgaLazy;
  ServiceResponse first = service->Query(request);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.answer_set().size(), 3u);

  // Reload with one extra triple: the epoch bumps, the old cached result
  // is unreachable, and the fresh answers see the new triple.
  std::vector<Triple> more = TinyTriples();
  more.emplace_back("c", "r", "d");
  ASSERT_TRUE(service->LoadDataset("d", more).ok());
  ServiceResponse second = service->Query(request);
  ASSERT_TRUE(second.ok());
  EXPECT_GT(second.epoch, first.epoch);
  EXPECT_FALSE(second.result_cache_hit);
  EXPECT_FALSE(second.plan_cache_hit);
  EXPECT_EQ(second.answer_set().size(), 4u);

  // Dropping purges eagerly; the dataset is gone for new requests.
  ASSERT_TRUE(service->DropDataset("d").ok());
  ServiceResponse gone = service->Query(request);
  EXPECT_EQ(gone.status.code(), StatusCode::kNotFound);
}

// ---- engine=auto and explain -----------------------------------------------

TEST(ServiceAutoTest, AutoAndExplicitShareCacheEntries) {
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  auto service = MakeService();
  ASSERT_TRUE(service->LoadDataset("bsbm", triples).ok());
  auto query = GetTestbedQuery("B1");
  ASSERT_TRUE(query.ok());

  ServiceRequest request;
  request.dataset = "bsbm";
  request.query = *query;
  request.options.kind = EngineKind::kAuto;
  ServiceResponse cold = service->Query(request);
  ASSERT_TRUE(cold.ok()) << cold.status.ToString();
  ASSERT_TRUE(cold.stats.ok());
  EXPECT_FALSE(cold.result_cache_hit);
  ASSERT_FALSE(cold.stats.chosen_engine.empty());
  EXPECT_EQ(cold.stats.chosen_engine, cold.stats.engine);
  EXPECT_EQ(cold.stats.plan_candidates.size(), 6u);

  // The same query with the chosen engine requested EXPLICITLY must hit
  // the result cache: auto resolves before the key is computed, so auto
  // and explicit runs share one entry.
  EngineKind chosen = EngineKind::kAuto;
  for (const PlanCandidate& candidate : cold.stats.plan_candidates) {
    if (candidate.chosen) chosen = candidate.kind;
  }
  ASSERT_NE(chosen, EngineKind::kAuto);
  ServiceRequest explicit_request = request;
  explicit_request.options.kind = chosen;
  ServiceResponse warm = service->Query(explicit_request);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.result_cache_hit);
  EXPECT_EQ(warm.answer_set(), cold.answer_set());
  // The explicit request gets the cached answers WITHOUT chooser
  // annotations — the decision belongs to the auto request only.
  EXPECT_TRUE(warm.stats.chosen_engine.empty());

  // And an auto replay hits the same entry, re-stamped with its own
  // (deterministic, identical) decision.
  ServiceResponse replay = service->Query(request);
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay.result_cache_hit);
  EXPECT_EQ(replay.stats.chosen_engine, cold.stats.chosen_engine);
  EXPECT_EQ(replay.stats.plan_rationale, cold.stats.plan_rationale);
  EXPECT_EQ(replay.answer_set(), cold.answer_set());
}

TEST(ServiceAutoTest, ExplainScoresWithoutExecuting) {
  std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  auto service = MakeService();
  ASSERT_TRUE(service->LoadDataset("bsbm", triples).ok());
  auto query = GetTestbedQuery("B1");
  ASSERT_TRUE(query.ok());

  ServiceRequest request;
  request.dataset = "bsbm";
  request.query = *query;
  request.options.kind = EngineKind::kAuto;
  auto choice = service->Explain(request);
  ASSERT_TRUE(choice.ok()) << choice.status().ToString();
  EXPECT_EQ(choice->candidates.size(), 6u);
  EXPECT_FALSE(choice->rationale.empty());
  EXPECT_NE(choice->kind, EngineKind::kAuto);

  // Explain must not have executed or cached anything: the first real
  // query is still a cold run.
  ServiceStatsSnapshot stats = service->Stats();
  EXPECT_EQ(stats.served, 0u);
  ServiceResponse cold = service->Query(request);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold.result_cache_hit);
  EXPECT_EQ(cold.stats.chosen_engine,
            std::string(EngineKindToString(choice->kind)));

  // Explain ignores options.kind: a concrete engine gets the same table.
  ServiceRequest explicit_request = request;
  explicit_request.options.kind = EngineKind::kPig;
  auto same = service->Explain(explicit_request);
  ASSERT_TRUE(same.ok());
  EXPECT_EQ(same->kind, choice->kind);
  EXPECT_EQ(same->rationale, choice->rationale);

  auto missing = request;
  missing.dataset = "nope";
  EXPECT_EQ(service->Explain(missing).status().code(),
            StatusCode::kNotFound);
}

// ---- Admission control -----------------------------------------------------

// A dataset loader the test can hold closed, pinning the single worker
// inside an executing request while more submissions arrive.
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool entered = false;
  bool release = false;

  TripleLoader Loader(std::vector<Triple> triples) {
    return [this, triples]() -> Result<std::vector<Triple>> {
      std::unique_lock<std::mutex> lock(mu);
      entered = true;
      cv.notify_all();
      cv.wait(lock, [this] { return release; });
      return triples;
    };
  }
  void WaitEntered() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return entered; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
    cv.notify_all();
  }
};

TEST(ServiceAdmissionTest, RejectsCancelsAndExpires) {
  // Gates outlive the service: its destructor drains queued requests,
  // whose loaders reference them.
  Gate gate;
  Gate gate2;
  ServiceConfig config;
  config.cluster = RoomyCluster();
  config.max_concurrent = 1;
  config.queue_bound = 1;
  QueryService service(config);

  ASSERT_TRUE(
      service.RegisterDataset("slow", gate.Loader(TinyTriples())).ok());
  auto query = MakeQuery("q", "SELECT * WHERE { ?s ?p ?o . }");
  ServiceRequest request;
  request.dataset = "slow";
  request.query = query;
  request.options.kind = EngineKind::kNtgaLazy;

  // First request occupies the only worker (blocked inside the loader).
  std::promise<ServiceResponse> blocked_promise;
  uint64_t blocked = service.Submit(request, [&](ServiceResponse r) {
    blocked_promise.set_value(std::move(r));
  });
  EXPECT_NE(blocked, 0u);
  gate.WaitEntered();

  // Second request fills the queue (bound 1).
  std::promise<ServiceResponse> queued_promise;
  uint64_t queued = service.Submit(request, [&](ServiceResponse r) {
    queued_promise.set_value(std::move(r));
  });
  EXPECT_NE(queued, 0u);

  // Third request exceeds the bound: rejected inline, ticket 0.
  std::promise<ServiceResponse> rejected_promise;
  uint64_t rejected = service.Submit(request, [&](ServiceResponse r) {
    rejected_promise.set_value(std::move(r));
  });
  EXPECT_EQ(rejected, 0u);
  ServiceResponse rejection = rejected_promise.get_future().get();
  EXPECT_EQ(rejection.status.code(), StatusCode::kUnavailable);

  // Cancel the queued request; its callback reports kCancelled.
  EXPECT_TRUE(service.Cancel(queued));
  EXPECT_FALSE(service.Cancel(queued));

  gate.Release();
  ServiceResponse first = blocked_promise.get_future().get();
  EXPECT_TRUE(first.ok()) << first.status.ToString();
  EXPECT_EQ(first.answer_set().size(), 3u);
  ServiceResponse cancelled = queued_promise.get_future().get();
  EXPECT_EQ(cancelled.status.code(), StatusCode::kCancelled);
  // The executing request was past the point of cancellation.
  EXPECT_FALSE(service.Cancel(blocked));

  // Deadline expiry: pin the worker again via a second gated dataset, and
  // let a 1ms-deadline request expire while it waits in the queue.
  ASSERT_TRUE(
      service.RegisterDataset("slow2", gate2.Loader(TinyTriples())).ok());
  ServiceRequest pin = request;
  pin.dataset = "slow2";
  std::promise<ServiceResponse> pin_promise;
  ASSERT_NE(service.Submit(pin,
                           [&](ServiceResponse r) {
                             pin_promise.set_value(std::move(r));
                           }),
            0u);
  gate2.WaitEntered();

  ServiceRequest hurried = request;  // "slow" is already loaded by now
  hurried.deadline_ms = 1;
  std::promise<ServiceResponse> late_promise;
  ASSERT_NE(service.Submit(hurried,
                           [&](ServiceResponse r) {
                             late_promise.set_value(std::move(r));
                           }),
            0u);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate2.Release();
  ServiceResponse pinned = pin_promise.get_future().get();
  EXPECT_TRUE(pinned.ok()) << pinned.status.ToString();
  ServiceResponse late = late_promise.get_future().get();
  EXPECT_EQ(late.status.code(), StatusCode::kDeadlineExceeded);

  ServiceStatsSnapshot stats = service.Stats();
  EXPECT_GE(stats.rejected, 1u);
  EXPECT_GE(stats.cancelled, 1u);
  EXPECT_GE(stats.deadline_expired, 1u);
  EXPECT_GE(stats.served, 2u);
  EXPECT_EQ(stats.submitted, 5u);
}

// ---- Request validation ----------------------------------------------------

TEST(ServiceValidationTest, RejectsMalformedRequests) {
  auto service = MakeService();
  ASSERT_TRUE(service->LoadDataset("d", TinyTriples()).ok());
  auto query = MakeQuery("q", "SELECT * WHERE { ?s ?p ?o . }");

  ServiceRequest none;
  none.dataset = "d";
  EXPECT_EQ(service->Query(none).status.code(),
            StatusCode::kInvalidArgument);

  ServiceRequest both;
  both.dataset = "d";
  both.query = query;
  both.batch = {query};
  EXPECT_EQ(service->Query(both).status.code(),
            StatusCode::kInvalidArgument);

  ServiceRequest aggregate_batch;
  aggregate_batch.dataset = "d";
  aggregate_batch.batch = {query};
  AggregateSpec spec;
  spec.group_vars = {"s"};
  spec.counted_var = "p";
  aggregate_batch.aggregate = spec;
  EXPECT_EQ(service->Query(aggregate_batch).status.code(),
            StatusCode::kInvalidArgument);

  ServiceRequest unknown;
  unknown.dataset = "nope";
  unknown.query = query;
  EXPECT_EQ(service->Query(unknown).status.code(), StatusCode::kNotFound);
}

// ---- Stats JSON ------------------------------------------------------------

TEST(ServiceStatsTest, SnapshotJsonParses) {
  auto service = MakeService();
  ASSERT_TRUE(service->LoadDataset("d", TinyTriples()).ok());
  ServiceRequest request;
  request.dataset = "d";
  request.query = MakeQuery("q", "SELECT * WHERE { ?s ?p ?o . }");
  request.options.kind = EngineKind::kNtgaLazy;
  ASSERT_TRUE(service->Query(request).ok());
  ASSERT_TRUE(service->Query(request).ok());

  ServiceStatsSnapshot snapshot = service->Stats();
  auto json = ParseJson(snapshot.ToJson());
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  EXPECT_EQ(json->GetUint("submitted"), 2u);
  EXPECT_EQ(json->GetUint("served"), 2u);
  EXPECT_EQ(json->GetUint("datasets"), 1u);
  EXPECT_EQ(json->Get("result_cache").GetUint("hits"), 1u);
  EXPECT_EQ(json->Get("result_cache").GetUint("misses"), 1u);
  EXPECT_EQ(json->Get("result_cache").GetUint("lookups"), 2u);
  EXPECT_EQ(json->Get("plan_cache").GetUint("lookups"),
            json->Get("plan_cache").GetUint("hits") +
                json->Get("plan_cache").GetUint("misses"));
  EXPECT_GE(json->GetUint("cache_shards"), 8u);
  EXPECT_EQ(json->Get("exec_micros").GetUint("count"), 2u);
  EXPECT_TRUE(json->Has("queue_wait_micros"));
  EXPECT_TRUE(json->Has("queue_depth"));
}

// ---- Protocol dispatch (no socket) -----------------------------------------

TEST(ProtocolTest, MalformedLinesYieldErrorResponses) {
  auto service = MakeService();

  HandleResult bad_json = HandleRequestLine(service.get(), "not json");
  EXPECT_FALSE(bad_json.response.GetBool("ok"));
  EXPECT_FALSE(bad_json.shutdown);

  HandleResult bad_verb =
      HandleRequestLine(service.get(), R"({"verb":"frobnicate"})");
  EXPECT_FALSE(bad_verb.response.GetBool("ok"));
  EXPECT_EQ(bad_verb.response.GetString("code"), "InvalidArgument");

  HandleResult ping = HandleRequestLine(service.get(),
                                        R"({"verb":"ping","id":"7"})");
  EXPECT_TRUE(ping.response.GetBool("ok"));
  EXPECT_EQ(ping.response.GetString("id"), "7");

  HandleResult shutdown =
      HandleRequestLine(service.get(), R"({"verb":"shutdown"})");
  EXPECT_TRUE(shutdown.response.GetBool("ok"));
  EXPECT_TRUE(shutdown.shutdown);
}

TEST(ProtocolTest, ExplainVerbReturnsScoredCandidates) {
  auto service = MakeService();
  ASSERT_TRUE(
      service->LoadDataset("bsbm", SmallDataset(DatasetFamily::kBsbm))
          .ok());

  HandleResult explain = HandleRequestLine(
      service.get(),
      R"({"verb":"explain","dataset":"bsbm","query_id":"B1"})");
  ASSERT_TRUE(explain.response.GetBool("ok"))
      << explain.response.Dump();
  EXPECT_FALSE(explain.response.GetString("chosen").empty());
  EXPECT_FALSE(explain.response.GetString("rationale").empty());
  const JsonValue& candidates = explain.response.Get("candidates");
  ASSERT_TRUE(candidates.is_array());
  EXPECT_EQ(candidates.AsArray().size(), 6u);
  size_t chosen = 0;
  for (const JsonValue& candidate : candidates.AsArray()) {
    EXPECT_FALSE(candidate.GetString("engine").empty());
    EXPECT_TRUE(candidate.GetBool("feasible"));
    if (candidate.GetBool("chosen")) ++chosen;
  }
  EXPECT_EQ(chosen, 1u);

  // engine=auto on the query verb: the response carries the decision and
  // the stats name the concrete engine that actually ran.
  HandleResult run = HandleRequestLine(
      service.get(),
      R"({"verb":"query","dataset":"bsbm","query_id":"B1",)"
      R"("engine":"auto"})");
  ASSERT_TRUE(run.response.GetBool("ok")) << run.response.Dump();
  const JsonValue& stats = run.response.Get("stats");
  EXPECT_EQ(stats.GetString("chosen_engine"),
            explain.response.GetString("chosen"));
  EXPECT_EQ(stats.GetString("engine"), stats.GetString("chosen_engine"));
  ASSERT_TRUE(stats.Get("plan_candidates").is_array());
  EXPECT_EQ(stats.Get("plan_candidates").AsArray().size(), 6u);

  HandleResult missing = HandleRequestLine(
      service.get(),
      R"({"verb":"explain","dataset":"nope","query_id":"B1"})");
  EXPECT_FALSE(missing.response.GetBool("ok"));
  EXPECT_EQ(missing.response.GetString("code"), "NotFound");
}

}  // namespace
}  // namespace service
}  // namespace rdfmr
