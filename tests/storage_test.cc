// Storage-layer battery for the rdx dataset format (v2, with v1 compat).
//
//   * Round-trip: index -> mmap-load reproduces the exact input relation
//     (order and bytes), deterministically — and the v2 graph-stats
//     section decodes to the same catalog GraphStats::Compute derives.
//   * Golden file: the v2 header + section-table layout is pinned byte
//     for byte — any accidental format change fails here first.
//   * Differential: every engine kind at 1 and 4 threads produces
//     byte-identical answers and deterministic stats whether the dataset
//     was parsed from .nt or memory-mapped from .rdx.
//   * Corruption: truncation, bad magic, unsupported version, flipped
//     bytes, and out-of-bounds section offsets all yield structured
//     errors naming the file and byte offset — never a crash. A sweep
//     flips EVERY byte of a fixture and requires Open to reject each one.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/hash.h"
#include "gtest/gtest.h"
#include "rdf/triple.h"
#include "service/dataset_io.h"
#include "service/query_service.h"
#include "storage/format.h"
#include "storage/memmap.h"
#include "storage/rdx_reader.h"
#include "storage/rdx_writer.h"
#include "tests/test_util.h"
#include "testing/invariants.h"

namespace rdfmr {
namespace {

using storage::BuildRdxImage;
using storage::MemMap;
using storage::RdxReader;
using storage::WriteRdxFile;
using testing_util::AllEngineKinds;
using testing_util::SmallDataset;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "rdfmr_storage_" + name;
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good());
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

uint64_t ReadU64(const std::string& image, size_t at) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(image[at + i]);
  }
  return v;
}

uint32_t ReadU32(const std::string& image, size_t at) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(image[at + i]);
  }
  return v;
}

void PutU64(std::string* image, size_t at, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    (*image)[at + i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

/// Re-stamps the header checksum after a deliberate header/table patch,
/// so a test can reach the validation step BEHIND the checksum.
void RestampHeaderChecksum(std::string* image) {
  const uint64_t hash = HashCombine(
      Fnv1a64(std::string_view(image->data(), storage::kRdxOffHeaderChecksum)),
      Fnv1a64(std::string_view(
          image->data() + storage::kRdxTableOffset,
          storage::kRdxSectionCount * storage::kRdxSectionEntryBytes)));
  PutU64(image, storage::kRdxOffHeaderChecksum, hash);
}

std::vector<Triple> TinyTriples() {
  return {Triple("s1", "p1", "o1"), Triple("s2", "p1", "s1"),
          Triple("s1", "p2", "label one")};
}

Result<std::shared_ptr<const RdxReader>> OpenImage(const std::string& name,
                                                   const std::string& image) {
  const std::string path = TempPath(name);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(image.data(), static_cast<std::streamsize>(image.size()));
  out.close();
  return RdxReader::Open(path);
}

// ---- round trip -------------------------------------------------------------

TEST(RdxRoundTripTest, EveryFamilyReproducesTheExactRelation) {
  for (DatasetFamily family :
       {DatasetFamily::kBsbm, DatasetFamily::kBio2Rdf, DatasetFamily::kDbpedia,
        DatasetFamily::kBtc}) {
    const std::vector<Triple> triples = SmallDataset(family);
    const std::string path =
        TempPath("family_" + std::to_string(static_cast<int>(family)) +
                 ".rdx");
    ASSERT_TRUE(WriteRdxFile(path, triples).ok());

    auto reader = RdxReader::Open(path);
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    EXPECT_EQ((*reader)->triple_count(), triples.size());
    // File order is preserved, so the decode is the identical vector —
    // the property that makes parsed-load and mmap-load byte-identical
    // downstream (same SimDfs blocks, same stats, same answers).
    EXPECT_EQ((*reader)->Triples(), triples);
  }
}

TEST(RdxRoundTripTest, DictionaryAndIndexAccessorsAgreeWithTheRelation) {
  const std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  const std::string path = TempPath("accessors.rdx");
  ASSERT_TRUE(WriteRdxFile(path, triples).ok());
  auto opened = RdxReader::Open(path);
  ASSERT_TRUE(opened.ok());
  const RdxReader& reader = **opened;

  // Every decoded id maps back to the original term text.
  for (size_t i = 0; i < reader.triple_count(); ++i) {
    const RdxReader::EncodedTriple ids = reader.encoded(i);
    EXPECT_EQ(reader.term(ids.subject), triples[i].subject);
    EXPECT_EQ(reader.term(ids.property), triples[i].property);
    EXPECT_EQ(reader.term(ids.object), triples[i].object);
  }
  EXPECT_EQ(reader.FindTermId(triples[0].subject).has_value(), true);
  EXPECT_FALSE(reader.FindTermId("no-such-term-anywhere").has_value());

  // The property index is exactly the vertical partition: for each
  // distinct property, the ascending file positions of its triples.
  size_t indexed_rows = 0;
  for (std::string_view property : reader.Properties()) {
    std::vector<uint32_t> expected;
    for (size_t i = 0; i < triples.size(); ++i) {
      if (triples[i].property == property) {
        expected.push_back(static_cast<uint32_t>(i));
      }
    }
    EXPECT_EQ(reader.PropertyPostings(property), expected)
        << "property " << property;
    indexed_rows += expected.size();
  }
  EXPECT_EQ(indexed_rows, triples.size());
  EXPECT_TRUE(reader.PropertyPostings("absent-property").empty());
}

TEST(RdxRoundTripTest, GraphStatsSectionMatchesComputedCatalog) {
  for (DatasetFamily family :
       {DatasetFamily::kBsbm, DatasetFamily::kBio2Rdf, DatasetFamily::kDbpedia,
        DatasetFamily::kBtc}) {
    const std::vector<Triple> triples = SmallDataset(family);
    const std::string path =
        TempPath("stats_" + std::to_string(static_cast<int>(family)) +
                 ".rdx");
    ASSERT_TRUE(WriteRdxFile(path, triples).ok());
    auto opened = RdxReader::Open(path);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    ASSERT_TRUE((*opened)->has_graph_stats());

    // The persisted catalog must agree field for field with the one
    // computed from the decoded triples — the chooser sees the same
    // statistics whether the dataset was mapped or loaded.
    const GraphStats decoded = (*opened)->DecodeGraphStats();
    const GraphStats computed = GraphStats::Compute(triples);
    EXPECT_EQ(decoded.triple_count(), computed.triple_count());
    EXPECT_EQ(decoded.distinct_subjects(), computed.distinct_subjects());
    ASSERT_EQ(decoded.properties().size(), computed.properties().size());
    for (const auto& [property, expected] : computed.properties()) {
      const PropertyStats got = decoded.ForProperty(property);
      EXPECT_EQ(got.triple_count, expected.triple_count) << property;
      EXPECT_EQ(got.subject_count, expected.subject_count) << property;
      EXPECT_EQ(got.max_multiplicity, expected.max_multiplicity) << property;
      EXPECT_DOUBLE_EQ(got.avg_multiplicity, expected.avg_multiplicity)
          << property;
    }
  }
}

// Strips the graph-stats section from a v2 image, producing the exact v1
// layout (3-section table at offset 144) — real v1 files must stay
// readable, with the catalog recomputed from the decoded triples.
std::string DowngradeToV1(const std::string& v2) {
  const size_t v1_table_bytes = 3 * storage::kRdxSectionEntryBytes;
  const size_t stats_entry =
      storage::kRdxTableOffset + 3 * storage::kRdxSectionEntryBytes;
  const uint64_t stats_size = ReadU64(v2, stats_entry + 16);

  std::string v1 = v2.substr(0, stats_entry);       // header + 3 entries
  v1 += v2.substr(storage::kRdxFirstSectionOffset,  // payloads minus stats
                  v2.size() - storage::kRdxFirstSectionOffset - stats_size);
  v1[storage::kRdxOffVersion] = 1;
  v1[storage::kRdxOffSectionCount] = 3;
  PutU64(&v1, storage::kRdxOffFileSize, v1.size());
  for (uint32_t i = 0; i < 3; ++i) {
    const size_t entry =
        storage::kRdxTableOffset + i * storage::kRdxSectionEntryBytes;
    PutU64(&v1, entry + 8,
           ReadU64(v1, entry + 8) - storage::kRdxSectionEntryBytes);
  }
  const uint64_t hash = HashCombine(
      Fnv1a64(std::string_view(v1.data(), storage::kRdxOffHeaderChecksum)),
      Fnv1a64(std::string_view(v1.data() + storage::kRdxTableOffset,
                               v1_table_bytes)));
  PutU64(&v1, storage::kRdxOffHeaderChecksum, hash);
  return v1;
}

TEST(RdxRoundTripTest, V1FilesWithoutStatsSectionStayReadable) {
  const std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  auto v2 = BuildRdxImage(triples);
  ASSERT_TRUE(v2.ok());
  auto reader = OpenImage("v1_compat.rdx", DowngradeToV1(*v2));
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_FALSE((*reader)->has_graph_stats());
  EXPECT_EQ((*reader)->Triples(), triples);

  // No stats section: the accessor falls back to computing the catalog.
  const GraphStats decoded = (*reader)->DecodeGraphStats();
  const GraphStats computed = GraphStats::Compute(triples);
  EXPECT_EQ(decoded.triple_count(), computed.triple_count());
  EXPECT_EQ(decoded.distinct_subjects(), computed.distinct_subjects());
  EXPECT_EQ(decoded.properties().size(), computed.properties().size());
}

// A v1 file whose every byte is flipped must also always be rejected —
// the dual-version reader keeps full corruption coverage for old files.
TEST(RdxCorruptionTest, EveryByteFlipOfAV1FileIsDetected) {
  auto v2 = BuildRdxImage(TinyTriples());
  ASSERT_TRUE(v2.ok());
  const std::string good = DowngradeToV1(*v2);
  ASSERT_TRUE(OpenImage("v1_sweep.rdx", good).ok());
  for (size_t at = 0; at < good.size(); ++at) {
    std::string bad = good;
    bad[at] = static_cast<char>(bad[at] ^ 0xFF);
    auto reader = OpenImage("v1_sweep.rdx", bad);
    EXPECT_FALSE(reader.ok()) << "flip at byte " << at << " was accepted";
  }
}

TEST(RdxRoundTripTest, ImageIsDeterministic) {
  const std::vector<Triple> triples = SmallDataset(DatasetFamily::kDbpedia);
  auto a = BuildRdxImage(triples);
  auto b = BuildRdxImage(triples);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(RdxRoundTripTest, EmptyRelationRoundTrips) {
  const std::string path = TempPath("empty.rdx");
  ASSERT_TRUE(WriteRdxFile(path, {}).ok());
  auto reader = RdxReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ((*reader)->triple_count(), 0u);
  EXPECT_EQ((*reader)->term_count(), 0u);
  EXPECT_EQ((*reader)->property_count(), 0u);
  EXPECT_TRUE((*reader)->Triples().empty());
}

// ---- golden v2 layout -------------------------------------------------------

// Pins the v2 wire layout of the fixed TinyTriples() relation. If any of
// these assertions move, the change is a FORMAT change: bump kRdxVersion
// and update docs/FORMAT.md instead of editing the expectations.
TEST(RdxGoldenTest, V2HeaderAndTableLayoutIsPinned) {
  auto image_or = BuildRdxImage(TinyTriples());
  ASSERT_TRUE(image_or.ok());
  const std::string& image = *image_or;

  // Fixed geometry.
  EXPECT_EQ(storage::kRdxHeaderBytes, 48u);
  EXPECT_EQ(storage::kRdxSectionEntryBytes, 32u);
  EXPECT_EQ(storage::kRdxFirstSectionOffset, 176u);
  EXPECT_EQ(storage::RdxFirstSectionOffsetForVersion(1), 144u);

  // Header fields.
  ASSERT_GE(image.size(), storage::kRdxFirstSectionOffset);
  EXPECT_EQ(image.substr(0, 8), std::string("RDFMRDX\n"));
  EXPECT_EQ(ReadU32(image, storage::kRdxOffVersion), 2u);
  EXPECT_EQ(ReadU32(image, storage::kRdxOffSectionCount), 4u);
  EXPECT_EQ(ReadU64(image, storage::kRdxOffTripleCount), 3u);
  // 7 distinct terms in first-occurrence order:
  // s1 p1 o1 s2 p2 "label one" — s1 reused; terms: s1,p1,o1,s2,p2,label.
  EXPECT_EQ(ReadU64(image, storage::kRdxOffTermCount), 6u);
  EXPECT_EQ(ReadU64(image, storage::kRdxOffFileSize), image.size());

  // Section table: ids 1..4, reserved zero, contiguous from offset 176.
  // dictionary = 7 u64 offsets + 19 blob bytes = 75; triples = 3 * 12;
  // index = 8 + 2 * 24 + 3 * 4 = 68; stats = 24 + 2 * 32 = 88.
  const uint64_t expected_sizes[4] = {75, 36, 68, 88};
  uint64_t offset = storage::kRdxFirstSectionOffset;
  for (uint32_t i = 0; i < 4; ++i) {
    const size_t entry = storage::kRdxTableOffset +
                         i * storage::kRdxSectionEntryBytes;
    EXPECT_EQ(ReadU32(image, entry), i + 1) << "section id " << i;
    EXPECT_EQ(ReadU32(image, entry + 4), 0u) << "reserved " << i;
    EXPECT_EQ(ReadU64(image, entry + 8), offset) << "offset " << i;
    EXPECT_EQ(ReadU64(image, entry + 16), expected_sizes[i]) << "size " << i;
    EXPECT_EQ(ReadU64(image, entry + 24),
              Fnv1a64(std::string_view(image).substr(offset,
                                                     expected_sizes[i])))
        << "checksum " << i;
    offset += expected_sizes[i];
  }
  EXPECT_EQ(offset, image.size());

  // Dictionary: first-occurrence interning order, ids 0..5.
  const size_t dict = storage::kRdxFirstSectionOffset;
  const char* expected_terms[6] = {"s1", "p1", "o1", "s2", "p2", "label one"};
  uint64_t blob_at = 0;
  for (int t = 0; t < 6; ++t) {
    EXPECT_EQ(ReadU64(image, dict + 8 * t), blob_at) << "term offset " << t;
    blob_at += std::string(expected_terms[t]).size();
  }
  EXPECT_EQ(ReadU64(image, dict + 8 * 6), blob_at);
  EXPECT_EQ(image.substr(dict + 56, 19), std::string("s1p1o1s2p2label one"));

  // Triple records: (0,1,2) (3,1,0) (0,4,5).
  const size_t triples_at = dict + 75;
  const uint32_t expected_ids[9] = {0, 1, 2, 3, 1, 0, 0, 4, 5};
  for (int f = 0; f < 9; ++f) {
    EXPECT_EQ(ReadU32(image, triples_at + 4 * f), expected_ids[f])
        << "triple field " << f;
  }

  // Property index: p1 (id 1) -> rows 0,1; p2 (id 4) -> row 2.
  const size_t index_at = triples_at + 36;
  EXPECT_EQ(ReadU64(image, index_at), 2u);  // num_properties
  EXPECT_EQ(ReadU32(image, index_at + 8), 1u);        // p1
  EXPECT_EQ(ReadU64(image, index_at + 16), 0u);       // postings start
  EXPECT_EQ(ReadU64(image, index_at + 24), 2u);       // postings count
  EXPECT_EQ(ReadU32(image, index_at + 32), 4u);       // p2
  EXPECT_EQ(ReadU64(image, index_at + 40), 2u);       // postings start
  EXPECT_EQ(ReadU64(image, index_at + 48), 1u);       // postings count
  EXPECT_EQ(ReadU32(image, index_at + 56), 0u);       // p1 row 0
  EXPECT_EQ(ReadU32(image, index_at + 60), 1u);       // p1 row 1
  EXPECT_EQ(ReadU32(image, index_at + 64), 2u);       // p2 row 2

  // Graph stats: 3 triples over 2 subjects (s1, s2); p1 covers both
  // subjects with one object each, p2 covers s1 only.
  const size_t stats_at = index_at + 68;
  EXPECT_EQ(ReadU64(image, stats_at), 3u);       // triple count
  EXPECT_EQ(ReadU64(image, stats_at + 8), 2u);   // distinct subjects
  EXPECT_EQ(ReadU64(image, stats_at + 16), 2u);  // records
  EXPECT_EQ(ReadU32(image, stats_at + 24), 1u);  // p1
  EXPECT_EQ(ReadU64(image, stats_at + 32), 2u);  // p1 triples
  EXPECT_EQ(ReadU64(image, stats_at + 40), 2u);  // p1 subjects
  EXPECT_EQ(ReadU64(image, stats_at + 48), 1u);  // p1 max multiplicity
  EXPECT_EQ(ReadU32(image, stats_at + 56), 4u);  // p2
  EXPECT_EQ(ReadU64(image, stats_at + 64), 1u);  // p2 triples
  EXPECT_EQ(ReadU64(image, stats_at + 72), 1u);  // p2 subjects
  EXPECT_EQ(ReadU64(image, stats_at + 80), 1u);  // p2 max multiplicity
}

// ---- differential: parsed vs mapped -----------------------------------------

TEST(RdxDifferentialTest, MappedAndParsedLoadsAreByteIdenticalAcrossEngines) {
  const std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  const std::string nt_path = TempPath("diff.nt");
  const std::string rdx_path = TempPath("diff.rdx");
  ASSERT_TRUE(service::WriteDatasetFile(nt_path, triples).ok());
  // Index from the PARSED .nt so both loads see the same relation even
  // where .nt rendering is lossy about the in-memory original.
  auto parsed = service::ReadDatasetFile(nt_path);
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(WriteRdxFile(rdx_path, *parsed).ok());

  auto query = GetTestbedQuery("B1");
  ASSERT_TRUE(query.ok());

  service::ServiceConfig config;
  config.cluster = testing_util::RoomyCluster();
  service::QueryService parsed_service(config);
  service::QueryService mapped_service(config);
  ASSERT_TRUE(parsed_service
                  .RegisterDataset(
                      "d", [nt_path] {
                        return service::ReadDatasetFile(nt_path);
                      })
                  .ok());
  auto mapped_info = mapped_service.RegisterMappedDataset("d", rdx_path);
  ASSERT_TRUE(mapped_info.ok()) << mapped_info.status().ToString();
  EXPECT_TRUE(mapped_info->mapped);
  EXPECT_GT(mapped_info->mapped_bytes, 0u);
  EXPECT_FALSE(mapped_info->loaded);  // nothing materialized yet
  EXPECT_EQ(mapped_info->num_triples, parsed->size());

  for (EngineKind kind : AllEngineKinds()) {
    SCOPED_TRACE(EngineKindToString(kind));
    for (uint32_t threads : {1u, 4u}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      service::ServiceRequest request;
      request.dataset = "d";
      request.query = *query;
      request.options.kind = kind;
      request.options.runtime.num_threads = threads;
      request.use_result_cache = false;

      service::ServiceResponse from_parsed = parsed_service.Query(request);
      service::ServiceResponse from_mapped = mapped_service.Query(request);
      ASSERT_TRUE(from_parsed.ok()) << from_parsed.status.ToString();
      ASSERT_TRUE(from_mapped.ok()) << from_mapped.status.ToString();
      EXPECT_EQ(from_mapped.answer_set(), from_parsed.answer_set());
      const std::vector<std::string> diff = fuzz::CompareStatsIgnoringWallTimes(
          from_mapped.stats, from_parsed.stats);
      EXPECT_TRUE(diff.empty()) << diff.front();
    }
  }
}

// The zero-materialization scan path (the default for mapped datasets)
// must be indistinguishable — answers and every deterministic stat — from
// the `materialize` escape hatch that decodes the .rdx into a triple
// vector up front, across every engine kind and thread count.
TEST(RdxDifferentialTest, MappedScansMatchMaterializedEscapeHatch) {
  const std::vector<Triple> triples = SmallDataset(DatasetFamily::kBsbm);
  const std::string rdx_path = TempPath("scan_diff.rdx");
  ASSERT_TRUE(WriteRdxFile(rdx_path, triples).ok());

  auto query = GetTestbedQuery("B1");
  ASSERT_TRUE(query.ok());

  service::ServiceConfig config;
  config.cluster = testing_util::RoomyCluster();
  service::QueryService scan_service(config);
  service::QueryService materialized_service(config);
  auto scan_info = scan_service.RegisterMappedDataset("d", rdx_path);
  auto mat_info = materialized_service.RegisterMappedDataset(
      "d", rdx_path, /*materialize=*/true);
  ASSERT_TRUE(scan_info.ok()) << scan_info.status().ToString();
  ASSERT_TRUE(mat_info.ok()) << mat_info.status().ToString();
  EXPECT_TRUE(scan_info->mapped_scans);
  EXPECT_FALSE(mat_info->mapped_scans);
  EXPECT_TRUE(mat_info->mapped);  // still a mapped dataset, just decoded

  for (EngineKind kind : AllEngineKinds()) {
    SCOPED_TRACE(EngineKindToString(kind));
    for (uint32_t threads : {1u, 4u}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      service::ServiceRequest request;
      request.dataset = "d";
      request.query = *query;
      request.options.kind = kind;
      request.options.runtime.num_threads = threads;
      request.use_result_cache = false;

      service::ServiceResponse from_scan = scan_service.Query(request);
      service::ServiceResponse from_mat = materialized_service.Query(request);
      ASSERT_TRUE(from_scan.ok()) << from_scan.status.ToString();
      ASSERT_TRUE(from_mat.ok()) << from_mat.status.ToString();
      EXPECT_EQ(from_scan.answer_set(), from_mat.answer_set());
      const std::vector<std::string> diff = fuzz::CompareStatsIgnoringWallTimes(
          from_scan.stats, from_mat.stats);
      EXPECT_TRUE(diff.empty()) << diff.front();
    }
  }
  // Both handles report the same logical base relation size: mounting the
  // mapping meters exactly the bytes the decoded write would have.
  for (const service::DatasetInfo& info : scan_service.ListDatasets()) {
    for (const service::DatasetInfo& other :
         materialized_service.ListDatasets()) {
      EXPECT_EQ(info.base_bytes, other.base_bytes);
      EXPECT_EQ(info.num_triples, other.num_triples);
    }
  }
}

// Satellite regression: `rdfmr index` on a ZERO-triple input must produce
// a valid .rdx that opens, mounts, scans, and serves empty answers end to
// end — exercising the empty-section edge in writer, reader, registry,
// and the zero-materialization scan path.
TEST(RdxDifferentialTest, ZeroTripleIndexServesEmptyAnswersEndToEnd) {
  const std::string nt_path = TempPath("zero.nt");
  const std::string rdx_path = TempPath("zero.rdx");
  // The CLI `index` pipeline: read the dataset file, write the .rdx,
  // reopen through the validating reader.
  ASSERT_TRUE(service::WriteDatasetFile(nt_path, {}).ok());
  auto parsed = service::ReadDatasetFile(nt_path);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->empty());
  ASSERT_TRUE(WriteRdxFile(rdx_path, *parsed).ok());
  auto reader = RdxReader::Open(rdx_path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ((*reader)->triple_count(), 0u);

  auto query = GetTestbedQuery("B1");
  ASSERT_TRUE(query.ok());

  for (bool materialize : {false, true}) {
    SCOPED_TRACE(materialize ? "materialized" : "mapped scans");
    service::ServiceConfig config;
    config.cluster = testing_util::RoomyCluster();
    service::QueryService service(config);
    auto info = service.RegisterMappedDataset("zero", rdx_path, materialize);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    EXPECT_EQ(info->num_triples, 0u);

    for (EngineKind kind : AllEngineKinds()) {
      SCOPED_TRACE(EngineKindToString(kind));
      service::ServiceRequest request;
      request.dataset = "zero";
      request.query = *query;
      request.options.kind = kind;
      request.use_result_cache = false;
      service::ServiceResponse response = service.Query(request);
      ASSERT_TRUE(response.ok()) << response.status.ToString();
      ASSERT_TRUE(response.stats.ok()) << response.stats.status.ToString();
      EXPECT_TRUE(response.answer_set().empty());
    }
  }
}

TEST(RdxDifferentialTest, ReadDatasetFileDetectsRdxTransparently) {
  const std::vector<Triple> triples = TinyTriples();
  const std::string path = TempPath("detect.rdx");
  ASSERT_TRUE(WriteRdxFile(path, triples).ok());
  auto loaded = service::ReadDatasetFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, triples);
}

// ---- corruption -------------------------------------------------------------

TEST(RdxCorruptionTest, TruncationAtEveryLengthIsRejected) {
  auto image_or = BuildRdxImage(TinyTriples());
  ASSERT_TRUE(image_or.ok());
  const std::string& image = *image_or;
  // Every proper prefix must fail (and never crash): short prefixes as
  // truncation (kDataLoss), longer ones as size/checksum mismatches.
  for (size_t len = 0; len < image.size(); ++len) {
    auto reader = OpenImage("trunc.rdx", image.substr(0, len));
    ASSERT_FALSE(reader.ok()) << "prefix of " << len << " bytes opened";
    EXPECT_TRUE(reader.status().code() == StatusCode::kDataLoss ||
                reader.status().code() == StatusCode::kInvalidArgument)
        << reader.status().ToString();
  }
}

TEST(RdxCorruptionTest, WrongMagicNamesFileAndOffset) {
  auto image = BuildRdxImage(TinyTriples());
  ASSERT_TRUE(image.ok());
  (*image)[0] = 'X';
  auto reader = OpenImage("magic.rdx", *image);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(reader.status().message().find("magic"), std::string::npos);
  EXPECT_NE(reader.status().message().find("magic.rdx"), std::string::npos);
  EXPECT_NE(reader.status().message().find("byte offset 0"),
            std::string::npos);
}

TEST(RdxCorruptionTest, UnsupportedVersionIsExplicit) {
  auto image = BuildRdxImage(TinyTriples());
  ASSERT_TRUE(image.ok());
  (*image)[storage::kRdxOffVersion] = 9;
  auto reader = OpenImage("version.rdx", *image);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(reader.status().message().find("unsupported format version 9"),
            std::string::npos);
}

TEST(RdxCorruptionTest, FlippedPayloadByteFailsTheSectionChecksum) {
  auto image = BuildRdxImage(TinyTriples());
  ASSERT_TRUE(image.ok());
  // Flip one dictionary blob byte.
  (*image)[storage::kRdxFirstSectionOffset + 60] ^= 0x01;
  auto reader = OpenImage("flip.rdx", *image);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(reader.status().message().find("checksum mismatch"),
            std::string::npos);
  EXPECT_NE(reader.status().message().find("dictionary"), std::string::npos);
}

TEST(RdxCorruptionTest, OutOfBoundsSectionOffsetIsStructured) {
  auto image = BuildRdxImage(TinyTriples());
  ASSERT_TRUE(image.ok());
  // Point the triples section far past EOF; restamp the header checksum
  // so validation reaches the bounds check itself.
  PutU64(&*image,
         storage::kRdxTableOffset + storage::kRdxSectionEntryBytes + 8,
         1ULL << 60);
  RestampHeaderChecksum(&*image);
  auto reader = OpenImage("oob.rdx", *image);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(reader.status().message().find("out of bounds"),
            std::string::npos);
  EXPECT_NE(reader.status().message().find("triples"), std::string::npos);
}

TEST(RdxCorruptionTest, HeaderCountCorruptionIsCaughtByTheChecksum) {
  auto image = BuildRdxImage(TinyTriples());
  ASSERT_TRUE(image.ok());
  (*image)[storage::kRdxOffTripleCount] = 99;
  auto reader = OpenImage("count.rdx", *image);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kDataLoss);
}

TEST(RdxCorruptionTest, NotAFileAndMissingFileAreIoErrors) {
  auto missing = RdxReader::Open(TempPath("does_not_exist.rdx"));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kIoError);
  auto dir = RdxReader::Open(::testing::TempDir());
  ASSERT_FALSE(dir.ok());
  EXPECT_EQ(dir.status().code(), StatusCode::kIoError);
}

TEST(RdxCorruptionTest, EveryByteFlipIsDetected) {
  auto image_or = BuildRdxImage(TinyTriples());
  ASSERT_TRUE(image_or.ok());
  const std::string& good = *image_or;
  ASSERT_TRUE(OpenImage("sweep.rdx", good).ok());
  // Every byte of the file is covered by magic/version/count checks, the
  // header checksum, or a section checksum — so EVERY single-byte
  // corruption must be rejected at Open, at every position.
  for (size_t at = 0; at < good.size(); ++at) {
    std::string bad = good;
    bad[at] = static_cast<char>(bad[at] ^ 0xFF);
    auto reader = OpenImage("sweep.rdx", bad);
    EXPECT_FALSE(reader.ok()) << "flip at byte " << at << " was accepted";
  }
}

TEST(RdxCorruptionTest, MappedRegistrationSurfacesCorruptionNotCrash) {
  auto image = BuildRdxImage(TinyTriples());
  ASSERT_TRUE(image.ok());
  (*image)[image->size() - 1] ^= 0xFF;
  const std::string path = TempPath("bad_register.rdx");
  WriteBytes(path, *image);

  service::ServiceConfig config;
  config.cluster = testing_util::RoomyCluster();
  service::QueryService service(config);
  auto info = service.RegisterMappedDataset("bad", path);
  ASSERT_FALSE(info.ok());
  EXPECT_EQ(info.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(info.status().message().find(path), std::string::npos);
  EXPECT_TRUE(service.ListDatasets().empty());
}

// The zero-materialization scan path trusts the property-index postings to
// enumerate matching rows, so a corrupted posting must be caught when the
// mapping is registered for scanning (RdxReader::Open checksums every
// section) — never surface as a wrong or crashing answer mid-query.
TEST(RdxCorruptionTest, CorruptPostingSectionFailsAtScanRegistration) {
  auto image = BuildRdxImage(TinyTriples());
  ASSERT_TRUE(image.ok());
  // Locate the property-index section through the table and flip a row id
  // inside its trailing postings array.
  const size_t index_entry =
      storage::kRdxTableOffset + 2 * storage::kRdxSectionEntryBytes;
  const uint64_t index_offset = ReadU64(*image, index_entry + 8);
  const uint64_t index_size = ReadU64(*image, index_entry + 16);
  (*image)[index_offset + index_size - 2] ^= 0xFF;
  const std::string path = TempPath("bad_posting.rdx");
  WriteBytes(path, *image);

  service::ServiceConfig config;
  config.cluster = testing_util::RoomyCluster();
  service::QueryService service(config);
  auto info = service.RegisterMappedDataset("bad", path);
  ASSERT_FALSE(info.ok());
  EXPECT_EQ(info.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(info.status().message().find("property index"),
            std::string::npos)
      << info.status().ToString();
  // Registration rejected the dataset outright: no handle exists for a
  // query to reach, so the failure can never move mid-scan.
  EXPECT_TRUE(service.ListDatasets().empty());
}

}  // namespace
}  // namespace rdfmr
