// Shared helpers for the test suite: small deterministic datasets per
// family, DFS loading, and engine option lists.

#ifndef RDFMR_TESTS_TEST_UTIL_H_
#define RDFMR_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "datagen/bio2rdf.h"
#include "datagen/bsbm.h"
#include "datagen/btc.h"
#include "datagen/dbpedia.h"
#include "datagen/testbed.h"
#include "dfs/sim_dfs.h"
#include "engine/engine.h"
#include "rdf/triple.h"

namespace rdfmr {
namespace testing_util {

/// Small-but-meaningful dataset for one family (deterministic).
inline std::vector<Triple> SmallDataset(DatasetFamily family) {
  switch (family) {
    case DatasetFamily::kBsbm: {
      BsbmConfig config;
      config.num_products = 60;
      config.num_features = 30;
      config.offers_per_product = 2;
      config.reviews_per_product = 2;
      return GenerateBsbm(config);
    }
    case DatasetFamily::kBio2Rdf: {
      Bio2RdfConfig config;
      config.num_genes = 80;
      config.num_go_terms = 40;
      config.num_articles = 40;
      config.max_multiplicity = 12;
      // Keep A5/A6 non-vacuous at this scale.
      config.hexokinase_fraction = 0.1;
      config.nur77_link_fraction = 0.15;
      return GenerateBio2Rdf(config);
    }
    case DatasetFamily::kDbpedia: {
      DbpediaConfig config;
      config.num_entities = 150;
      config.sopranos_fraction = 0.12;  // keep C2 non-vacuous at this scale
      return GenerateDbpedia(config);
    }
    case DatasetFamily::kBtc: {
      BtcConfig config;
      config.num_dbpedia_entities = 120;
      config.num_genes = 40;
      config.num_cross_links = 60;
      return GenerateBtc(config);
    }
  }
  return {};
}

/// A roomy cluster for correctness tests (no artificial disk pressure).
inline ClusterConfig RoomyCluster() {
  ClusterConfig config;
  config.num_nodes = 8;
  config.disk_per_node = 256ULL << 20;
  config.replication = 1;
  config.block_size = 4ULL << 20;
  config.num_reducers = 4;
  return config;
}

/// Loads `triples` into a fresh DFS at path "base".
inline std::unique_ptr<SimDfs> MakeDfsWithBase(
    const std::vector<Triple>& triples,
    ClusterConfig config = RoomyCluster()) {
  auto dfs = std::make_unique<SimDfs>(config);
  Status st = dfs->WriteFile("base", SerializeTriples(triples));
  if (!st.ok()) return nullptr;
  return dfs;
}

/// All engine kinds under test.
inline std::vector<EngineKind> AllEngineKinds() {
  return {EngineKind::kPig,          EngineKind::kHive,
          EngineKind::kNtgaEager,    EngineKind::kNtgaLazyFull,
          EngineKind::kNtgaLazyPartial, EngineKind::kNtgaLazy};
}

}  // namespace testing_util
}  // namespace rdfmr

#endif  // RDFMR_TESTS_TEST_UTIL_H_
