#!/usr/bin/env python3
"""Compare a BENCH_*.json run against a checked-in baseline.

Usage:
  tools/bench_compare.py --baseline bench/baselines/BENCH_service.json \
      --current BENCH_service.json --field qps --direction higher \
      [--tolerance 0.20]

Both files must follow the bench report convention: a top-level object
with a "cells" array of flat objects (--cells-key selects a different
top-level array, e.g. the service bench's derived "scaling" ratio rows).
Rows are matched by every key that
is NOT the measured field and NOT a wall-clock field ("seconds",
"wall_seconds"): the remaining string/int fields form the row identity.

--direction higher  => fail when current < baseline * (1 - tolerance)
                       (e.g. qps: bigger is better)
--direction lower   => fail when current > baseline * (1 + tolerance)
                       (e.g. modeled_seconds: smaller is better)

Rows present in the baseline but missing from the current run are
failures (a silently dropped cell must not pass the gate); extra rows in
the current run are reported but allowed (new cells need a baseline
refresh, not a red build). Exit 0 iff every matched cell is within
tolerance and no baseline cell is missing.
"""

import argparse
import json
import sys

# Host wall-clock measurements are load-dependent and never gated.
WALL_FIELDS = {"seconds", "wall_seconds"}


def load_cells(path, cells_key):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as err:
        sys.exit(f"error: cannot read {path}: {err}")
    cells = doc.get(cells_key)
    if not isinstance(cells, list):
        sys.exit(f"error: {path}: no '{cells_key}' array")
    return cells


def row_key(cell, field):
    parts = []
    for name in sorted(cell):
        if name == field or name in WALL_FIELDS:
            continue
        value = cell[name]
        if isinstance(value, float):
            # Floats other than the measured field are metrics, not
            # identity (e.g. modeled_seconds when gating on qps).
            continue
        parts.append(f"{name}={value}")
    return ", ".join(parts)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--field", required=True,
                        help="measured field to gate on (e.g. qps)")
    parser.add_argument("--direction", required=True,
                        choices=["higher", "lower"],
                        help="which direction is better for --field")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed relative regression (default 0.20)")
    parser.add_argument("--cells-key", default="cells",
                        help="top-level array holding the rows "
                             "(default 'cells')")
    args = parser.parse_args()

    baseline = {}
    for cell in load_cells(args.baseline, args.cells_key):
        if args.field not in cell:
            sys.exit(f"error: baseline cell lacks '{args.field}': {cell}")
        baseline[row_key(cell, args.field)] = float(cell[args.field])

    failures = []
    matched = 0
    seen = set()
    for cell in load_cells(args.current, args.cells_key):
        key = row_key(cell, args.field)
        seen.add(key)
        if key not in baseline:
            print(f"note: no baseline for [{key}] — skipped "
                  f"(refresh bench/baselines/ to gate it)")
            continue
        if args.field not in cell:
            failures.append(f"[{key}] current run lacks '{args.field}'")
            continue
        base = baseline[key]
        cur = float(cell[args.field])
        if args.direction == "higher":
            limit = base * (1.0 - args.tolerance)
            bad = cur < limit
            verb = "dropped"
        else:
            limit = base * (1.0 + args.tolerance)
            bad = cur > limit
            verb = "rose"
        matched += 1
        status = "FAIL" if bad else "ok"
        print(f"{status:4s} [{key}] {args.field}: baseline {base:g} -> "
              f"current {cur:g} (limit {limit:g})")
        if bad:
            failures.append(
                f"[{key}] {args.field} {verb} beyond {args.tolerance:.0%}: "
                f"{base:g} -> {cur:g}")

    for key in baseline:
        if key not in seen:
            failures.append(f"[{key}] present in baseline, missing from "
                            f"current run")

    if matched == 0 and not failures:
        sys.exit("error: no cells matched between baseline and current run")
    if failures:
        print(f"\n{len(failures)} regression(s) vs {args.baseline}:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"\nall {matched} matched cell(s) within "
          f"{args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
