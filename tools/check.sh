#!/usr/bin/env bash
# Builds the repo with a sanitizer and runs the full test suite under it,
# including the differential fuzz smoke (ctest label fuzz_smoke).
#
#   tools/check.sh [thread|address|undefined|both|all] [--quick]
#
# ThreadSanitizer is the gate for the multi-threaded MR runtime: the
# determinism tests exercise every engine at 1/2/8 threads, so a clean
# `tools/check.sh thread` means the parallel map/sort/reduce phases are
# data-race free. UndefinedBehaviorSanitizer guards the storage layer's
# pointer/offset arithmetic (mmap readers, mapped scans) and is built with
# -fno-sanitize-recover so any finding is fatal. `both` runs thread then
# address; `all` adds undefined. Build trees live in build-<san>-san/
# next to build/; each is configured from scratch idempotently (a stale
# or half-configured tree is wiped and redone).
#
# --quick skips the explicit fuzz_smoke/service label re-runs (the full
# ctest pass still covers their registered tests once) — the CI sanitizer
# jobs use it to keep wall time down.
#
# CI-friendly: fully non-interactive, and with `both` it runs every
# requested sanitizer even after a failure, exiting with the FIRST failing
# exit code.
set -uo pipefail

mode="thread"
quick=0
for arg in "$@"; do
  case "$arg" in
    thread|address|undefined|both|all) mode="$arg" ;;
    --quick) quick=1 ;;
    *)
      echo "usage: $0 [thread|address|undefined|both|all] [--quick]" >&2
      exit 2
      ;;
  esac
done
case "$mode" in
  both) sans=(thread address) ;;
  all) sans=(thread address undefined) ;;
  *) sans=("$mode") ;;
esac

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cxx="${CXX:-c++}"

# Sanitized builds recompile everything; reuse ccache when the host has it
# (the CI sanitizer jobs restore a cache keyed like the build matrix).
launcher_args=()
if command -v ccache > /dev/null 2>&1; then
  launcher_args=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

# Fail fast, readably, when the compiler cannot produce sanitized
# binaries (e.g. a toolchain without the TSan runtime) instead of dying
# mid-build on a cryptic linker error.
probe_sanitizer() {
  local san="$1"
  local probe_dir
  probe_dir="$(mktemp -d)"
  echo 'int main() { return 0; }' > "$probe_dir/probe.cc"
  if ! "$cxx" -fsanitize="$san" "$probe_dir/probe.cc" \
       -o "$probe_dir/probe" > "$probe_dir/log" 2>&1; then
    echo "error: compiler '$cxx' cannot build with -fsanitize=$san." >&2
    echo "Install the ${san} sanitizer runtime (e.g. libtsan/libasan for" >&2
    echo "gcc, or use a clang with compiler-rt), or run plain" >&2
    echo "'cmake -B build -S . && ctest --test-dir build' instead." >&2
    echo "--- compiler output ---" >&2
    cat "$probe_dir/log" >&2
    rm -rf "$probe_dir"
    return 1
  fi
  rm -rf "$probe_dir"
}

run_one() {
  local san="$1"
  local build_dir="${repo_root}/build-${san}-san"

  probe_sanitizer "$san" || return $?

  # Configure from scratch idempotently: if an earlier configure was
  # interrupted or cached a different setting, retry once on a clean tree
  # rather than leaving the user to rm -rf by hand.
  if ! cmake -B "$build_dir" -S "$repo_root" -DRDFMR_SANITIZE="$san" \
       "${launcher_args[@]}"; then
    echo "configure failed; retrying on a clean ${build_dir}" >&2
    rm -rf "$build_dir"
    cmake -B "$build_dir" -S "$repo_root" -DRDFMR_SANITIZE="$san" \
      "${launcher_args[@]}" || return $?
  fi

  cmake --build "$build_dir" -j "$(nproc)" || return $?
  # Full suite first (includes the fuzz regression tests), then the
  # fuzz_smoke label explicitly so the 200-case differential sweep and the
  # injected-bug drill always run under the sanitizer.
  ctest --test-dir "$build_dir" --output-on-failure || return $?
  if [[ "$quick" == 1 ]]; then
    # Even quick TSan runs re-run the thread-dense service stress suite
    # explicitly: it is the races-or-bust gate for the lock-free stats and
    # sharded-cache warm path, and it is cheap (seconds, not minutes).
    # The storage label rides along: mmap-backed datasets materialize
    # lazily under concurrent readers, so the rdx battery (and the format
    # fuzz smoke) must also be race-clean.
    if [[ "$san" == "thread" ]]; then
      ctest --test-dir "$build_dir" -L service_stress --output-on-failure \
        || return $?
      ctest --test-dir "$build_dir" -L storage --output-on-failure \
        || return $?
      # The net label covers the poll(2) event loop: cross-thread
      # completions, backpressure stalls, pipelined TCP clients, and the
      # stop-drain contract are exactly the races TSan exists to catch.
      ctest --test-dir "$build_dir" -L net --output-on-failure \
        || return $?
    fi
    return 0
  fi
  ctest --test-dir "$build_dir" -L fuzz_smoke --output-on-failure \
    || return $?
  # The serving layer is the most concurrency-dense subsystem (socket
  # threads, worker pool, shared caches, one SimDfs base per dataset), so
  # its label additionally runs as an explicit TSan gate.
  if [[ "$san" == "thread" ]]; then
    ctest --test-dir "$build_dir" -L service --output-on-failure \
      || return $?
  fi
}

first_rc=0
for san in "${sans[@]}"; do
  echo "== sanitizer: ${san} =="
  # Capture the exit code directly: `if ! run_one` would clobber $? with
  # the negation's status (0), reporting every failure as "exit 0" and —
  # worse — letting a broken sanitizer run exit green.
  rc=0
  run_one "$san" || rc=$?
  if [[ "$rc" != 0 ]]; then
    echo "== sanitizer ${san} FAILED (exit ${rc}) ==" >&2
    if [[ "$first_rc" == 0 ]]; then first_rc=$rc; fi
  fi
done
exit "$first_rc"
