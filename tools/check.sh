#!/usr/bin/env bash
# Builds the repo with a sanitizer and runs the full test suite under it.
#
#   tools/check.sh [thread|address]     (default: thread)
#
# ThreadSanitizer is the gate for the multi-threaded MR runtime: the
# determinism tests exercise every engine at 1/2/8 threads, so a clean
# `tools/check.sh thread` means the parallel map/sort/reduce phases are
# data-race free. Build trees live in build-<san>-san/ next to build/.
set -euo pipefail

san="${1:-thread}"
case "$san" in
  thread|address) ;;
  *) echo "usage: $0 [thread|address]" >&2; exit 2 ;;
esac

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-${san}-san"

cmake -B "$build_dir" -S "$repo_root" -DRDFMR_SANITIZE="$san"
cmake --build "$build_dir" -j "$(nproc)"
ctest --test-dir "$build_dir" --output-on-failure
