#!/usr/bin/env bash
# Local replay of .github/workflows/ci.yml for machines without act or a
# GitHub runner. Runs the same steps as each CI job, in the same order,
# and reports a per-job PASS/FAIL/SKIP summary; exits with the first
# failing job's code.
#
#   tools/ci_dryrun.sh [job ...]
#
# Jobs: build-debug build-release asan tsan ubsan fuzz format bench
# (default: all of them). Tools CI installs but this host may lack are
# degraded gracefully: no ccache => plain compile, no clang-format =>
# the format job is SKIPped (CI itself still enforces it).
set -uo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

jobs=("$@")
if [[ ${#jobs[@]} -eq 0 ]]; then
  jobs=(build-debug build-release asan tsan ubsan fuzz format bench)
fi

launcher_args=()
if command -v ccache > /dev/null 2>&1; then
  launcher_args=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

build_and_test() {
  local build_type="$1"
  local build_dir="build-ci-$(echo "$build_type" | tr '[:upper:]' '[:lower:]')"
  cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE="$build_type" \
    -DRDFMR_WERROR=ON "${launcher_args[@]}" || return $?
  cmake --build "$build_dir" -j "$(nproc)" || return $?
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
}

run_fuzz() {
  local build_dir="build-ci-release"
  cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release \
    "${launcher_args[@]}" || return $?
  cmake --build "$build_dir" -j "$(nproc)" --target rdfmr_fuzz || return $?
  "./$build_dir/tools/rdfmr_fuzz" --seed 1 --cases 200 --quiet || return $?
  "./$build_dir/tools/rdfmr_fuzz" --seed 1 --cases 200 --faults --quiet \
    || return $?
  "./$build_dir/tools/rdfmr_fuzz" --seed 1 --cases 50 --inject-bug --quiet \
    || return $?
  # engine=auto sweep: the chooser's pick must match a byte-identical
  # explicit run, and the sweep must exercise >= 2 distinct engines.
  "./$build_dir/tools/rdfmr_fuzz" --seed 1 --cases 200 --auto --quiet \
    || return $?
  cmake --build "$build_dir" -j "$(nproc)" --target rdfmr || return $?
  mkdir -p traces
  "./$build_dir/tools/rdfmr_fuzz" --seed 1 --cases 5 --quiet \
    --trace-dir traces || return $?
  "./$build_dir/tools/rdfmr" generate --family bsbm --scale 200 \
    --out bsbm-ci.nt || return $?
  "./$build_dir/tools/rdfmr" run --query B1 --data bsbm-ci.nt \
    --engine lazy --trace traces/run-b1-lazy.json
}

run_format() {
  python3 tools/metrics_lint.py src bench tools tests \
    --prom docs/metrics-scrape.prom || return $?
  if ! command -v clang-format > /dev/null 2>&1; then
    echo "clang-format not installed; CI will still enforce formatting"
    return 77  # SKIP
  fi
  git ls-files 'src/**/*.cc' 'src/**/*.h' 'tests/*.cc' 'bench/*.cc' \
    'bench/*.h' 'tools/*.cc' 'examples/*.cc' \
    | xargs clang-format --dry-run -Werror
}

run_bench() {
  local build_dir="build-ci-release"
  cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release \
    "${launcher_args[@]}" || return $?
  cmake --build "$build_dir" -j "$(nproc)" --target bench_service \
    fig12_bsbm1m bench_index bench_net bench_auto || return $?
  # The benches write BENCH_*.json into the working directory, exactly as
  # the CI job does before uploading them as artifacts.
  "./$build_dir/bench/bench_service" || return $?
  "./$build_dir/bench/fig12_bsbm1m" --small || return $?
  # bench_index hard-fails on its own when mmap-open is not >= 10x faster
  # than parse-open, independent of the baseline-relative gate below.
  "./$build_dir/bench/bench_index" || return $?
  # bench_net hard-fails on its own when pipelining loses to serial
  # request/response on either transport.
  "./$build_dir/bench/bench_net" || return $?
  # bench_auto hard-fails on its own when engine=auto's modeled cost lands
  # more than 5% above the best fixed engine on any testbed query.
  "./$build_dir/bench/bench_auto" || return $?
  python3 tools/bench_compare.py \
    --baseline bench/baselines/BENCH_service.json \
    --current BENCH_service.json \
    --field qps --direction higher --tolerance 0.20 || return $?
  # Separate gate over the derived warm-result scaling ratios: qps(N)/qps(1)
  # must not fall back toward the pre-sharding inverse scaling.
  python3 tools/bench_compare.py \
    --baseline bench/baselines/BENCH_service.json \
    --current BENCH_service.json \
    --cells-key scaling \
    --field ratio --direction higher --tolerance 0.20 || return $?
  python3 tools/bench_compare.py \
    --baseline bench/baselines/BENCH_fig12.json \
    --current BENCH_fig12.json \
    --field modeled_seconds --direction lower --tolerance 0.20 || return $?
  # The storage bench's gateable numbers are ratios (parse-open/mmap-open
  # and the decoded/mapped scan speedups): same host, same process =>
  # machine speed cancels out.
  python3 tools/bench_compare.py \
    --baseline bench/baselines/BENCH_index.json \
    --current BENCH_index.json \
    --cells-key gates \
    --field speedup --direction higher --tolerance 0.50 || return $?
  # Warm mapped-scan throughput: loose absolute gate catching collapses
  # the ratio rows would cancel out.
  python3 tools/bench_compare.py \
    --baseline bench/baselines/BENCH_index.json \
    --current BENCH_index.json \
    --cells-key scan \
    --field qps --direction higher --tolerance 0.60 || return $?
  # Transport cells are scheduler-sensitive (client threads and the event
  # loop share cores), so the absolute qps gate is loose; the pipelining
  # amortization ratios divide out machine speed and get the tight gate.
  python3 tools/bench_compare.py \
    --baseline bench/baselines/BENCH_net.json \
    --current BENCH_net.json \
    --field qps --direction higher --tolerance 0.40 || return $?
  python3 tools/bench_compare.py \
    --baseline bench/baselines/BENCH_net.json \
    --current BENCH_net.json \
    --cells-key ratios \
    --field ratio --direction higher --tolerance 0.25 || return $?
  python3 tools/bench_compare.py \
    --baseline bench/baselines/BENCH_auto.json \
    --current BENCH_auto.json \
    --field modeled_seconds --direction lower --tolerance 0.20 || return $?
  # Chooser-quality ratios (auto modeled / best fixed modeled) are
  # deterministic — modeled costs carry no wall time — so the gate is tight.
  python3 tools/bench_compare.py \
    --baseline bench/baselines/BENCH_auto.json \
    --current BENCH_auto.json \
    --cells-key ratios \
    --field ratio --direction lower --tolerance 0.05
}

run_job() {
  case "$1" in
    build-debug) build_and_test Debug ;;
    build-release) build_and_test Release ;;
    asan) tools/check.sh address --quick ;;
    tsan) tools/check.sh thread --quick ;;
    ubsan) tools/check.sh undefined --quick ;;
    fuzz) run_fuzz ;;
    format) run_format ;;
    bench) run_bench ;;
    *) echo "unknown job: $1" >&2; return 2 ;;
  esac
}

declare -A results
first_rc=0
for job in "${jobs[@]}"; do
  echo
  echo "===== ci job: ${job} ====="
  if run_job "$job"; then
    results[$job]=PASS
  else
    rc=$?
    if [[ $rc -eq 77 ]]; then
      results[$job]=SKIP
    else
      results[$job]="FAIL($rc)"
      if [[ "$first_rc" == 0 ]]; then first_rc=$rc; fi
    fi
  fi
done

echo
echo "===== ci dry-run summary ====="
for job in "${jobs[@]}"; do
  printf '%-14s %s\n' "$job" "${results[$job]}"
done
exit "$first_rc"
