#!/usr/bin/env python3
"""Lints rdfmr metric names against the naming convention.

Convention (same rules as MetricsRegistry::IsValidMetricName in
src/common/metrics.h):

    rdfmr_<area>_<name>_<unit>

where every token is lowercase [a-z0-9]+, there are at least four tokens
(rdfmr + area + one name word + unit), and <unit> is one of the known
unit suffixes.

Two modes, combinable:

    metrics_lint.py [SRC_DIR ...]
        Scan C++ sources for "rdfmr_..." string literals and validate
        each as a metric name. Literals ending in '_' are treated as
        name prefixes (completed at runtime) and skipped.

    metrics_lint.py --prom FILE [--prom FILE ...]
        Validate every series name in a Prometheus text-exposition file
        (captured scrape). Histogram series may carry a _bucket/_sum/
        _count suffix on a valid base name.

Exit 0 iff no violations. Used by CI next to clang-format.
"""

import argparse
import pathlib
import re
import sys

# Keep in sync with kMetricUnits in src/common/metrics.cc.
UNITS = {
    "total", "bytes", "seconds", "micros", "records",
    "groups", "calls", "ratio", "count",
}

HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")

TOKEN_RE = re.compile(r"^[a-z0-9]+$")
LITERAL_RE = re.compile(r'"(rdfmr_[A-Za-z0-9_]*)"')
SOURCE_SUFFIXES = {".cc", ".h"}


def is_valid_metric_name(name: str) -> bool:
    tokens = name.split("_")
    if len(tokens) < 4 or tokens[0] != "rdfmr":
        return False
    if not all(TOKEN_RE.match(token) for token in tokens):
        return False
    return tokens[-1] in UNITS


def is_valid_series_name(name: str) -> bool:
    """A scrape series is a metric name, possibly a histogram sub-series."""
    if is_valid_metric_name(name):
        return True
    for suffix in HISTOGRAM_SUFFIXES:
        if name.endswith(suffix) and is_valid_metric_name(
                name[:-len(suffix)]):
            return True
    return False


def lint_source_file(path: pathlib.Path) -> list:
    violations = []
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as err:
        return [f"{path}: unreadable: {err}"]
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in LITERAL_RE.finditer(line):
            literal = match.group(1)
            if literal.endswith("_"):  # runtime-completed prefix
                continue
            if not is_valid_metric_name(literal):
                violations.append(
                    f"{path}:{lineno}: bad metric name '{literal}' "
                    f"(want rdfmr_<area>_<name>_<unit>, unit in "
                    f"{sorted(UNITS)})")
    return violations


def lint_prom_file(path: pathlib.Path) -> list:
    violations = []
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as err:
        return [f"{path}: unreadable: {err}"]
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        series = line.split("{")[0].split()[0]
        if not is_valid_series_name(series):
            violations.append(
                f"{path}:{lineno}: bad series name '{series}'")
    return violations


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("dirs", nargs="*", type=pathlib.Path,
                        help="source directories to scan recursively")
    parser.add_argument("--prom", action="append", default=[],
                        type=pathlib.Path, metavar="FILE",
                        help="Prometheus text-exposition file to validate")
    args = parser.parse_args(argv)

    violations = []
    checked = 0
    for root in args.dirs:
        for path in sorted(root.rglob("*")):
            if path.suffix in SOURCE_SUFFIXES and path.is_file():
                checked += 1
                violations.extend(lint_source_file(path))
    for path in args.prom:
        checked += 1
        violations.extend(lint_prom_file(path))

    for violation in violations:
        print(violation, file=sys.stderr)
    print(f"metrics_lint: {checked} file(s) checked, "
          f"{len(violations)} violation(s)")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
