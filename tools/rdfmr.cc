// rdfmr — command-line front end for the library.
//
//   rdfmr catalog
//       List the paper's testbed queries.
//   rdfmr generate --family bsbm|bio2rdf|dbpedia|btc [--scale N]
//                  [--seed S] --out FILE[.nt|.tsv]
//       Generate a synthetic dataset (N-Triples or tab-separated).
//   rdfmr index IN[.nt|.tsv] OUT.rdx
//       Build a persistent, memory-mappable rdx v1 file from a dataset:
//       dictionary-encoded triple blocks, a per-property index for
//       vertical-partition scans, and per-section checksums (see
//       docs/FORMAT.md). `--data OUT.rdx` then opens zero-copy.
//   rdfmr stats --data FILE
//       Print graph statistics (sizes, multiplicities, multi-valuedness).
//   rdfmr explain (--query ID | --sparql FILE)
//       Show the star decomposition, join graph, and the NTGA logical
//       plans produced by the rewrite rules for every strategy.
//   rdfmr advise (--query ID | --sparql FILE) --data FILE [--nodes N]
//       Predict per-strategy footprints from graph statistics and
//       recommend an unnesting strategy and a phi_m partition factor.
//   rdfmr batch --queries ID,ID,... --data FILE [--engine ...]
//       Run several testbed queries as ONE shared-scan NTGA workflow.
//   rdfmr run (--query ID | --sparql FILE) --data FILE
//              [--engine pig|hive|eager|lazyfull|lazypartial|lazy|auto]
//              [--nodes N] [--disk-mb M] [--repl R] [--phi M]
//              [--threads T] [--show-answers K] [--max-attempts A]
//              [--fault-plan SPEC] [--disk-check none|degrade|fail-fast]
//              [--explain]
//       Execute the query on the simulated cluster and print metrics.
//       --engine auto lets the cost-based plan chooser pick the
//       modeled-cheapest engine from the dataset's statistics catalog;
//       --explain prints the scored candidate table and exits without
//       running anything.
//       --threads runs the simulator's map/reduce phases on T host
//       threads (byte-identical results, faster wall clock).
//       --fault-plan injects seeded DFS faults, e.g.
//       "seed=7,pread=0.05,write@3,lose-node@40:2" (see
//       src/dfs/fault_plan.h); --max-attempts bounds per-op retries
//       (default: cluster max_task_attempts = 4); --disk-check runs the
//       advisor's footprint preflight before launching.
//   rdfmr serve --listen unix:PATH|tcp:HOST:PORT [--listen ...]
//               [--socket PATH] [--max-connections C] [--idle-timeout-ms I]
//               [--nodes N] [--disk-mb M] [--repl R] [--threads T]
//               [--max-concurrent C] [--queue-bound Q]
//               [--result-cache-mb M] [--plan-cache-entries P]
//               [--deadline-ms D] [--dataset NAME --data FILE]
//               [--materialize]
//       Run the long-lived query service, speaking newline-delimited
//       JSON with request pipelining (see src/service/protocol.h and
//       docs/PROTOCOL.md). --listen repeats to serve AF_UNIX and TCP
//       endpoints simultaneously; tcp:HOST:0 binds an ephemeral port,
//       printed at startup. --socket PATH is shorthand for
//       --listen unix:PATH. --dataset/--data preloads one dataset;
//       an .rdx --data serves zero-materialization mapped scans unless
//       --materialize asks for the decode-on-first-query path.
//   rdfmr client --connect unix:PATH|tcp:HOST:PORT [--socket PATH]
//               [--connect-retries N] [--pipeline] [--request JSON]
//       Send one JSON request (or each line of stdin) to a running
//       server and print the response line(s). --connect-retries retries
//       transient connect failures with doubling backoff; --pipeline
//       sends every request before reading any response and prints the
//       responses in request order.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <vector>

#include "common/json.h"
#include "common/metrics.h"
#include "common/runtime_options.h"
#include "common/strings.h"
#include "common/trace.h"
#include "datagen/testbed.h"
#include "dfs/fault_plan.h"
#include "engine/advisor.h"
#include "engine/engine.h"
#include "engine/plan_chooser.h"
#include "mapreduce/workflow.h"
#include "net/address.h"
#include "ntga/logical_plan.h"
#include "ntga/ntga_compiler.h"
#include "relational/rel_compiler.h"
#include "query/sparql_parser.h"
#include "rdf/graph_stats.h"
#include "service/client.h"
#include "service/dataset_io.h"
#include "service/query_service.h"
#include "service/server.h"
#include "storage/format.h"
#include "storage/rdx_reader.h"
#include "storage/rdx_writer.h"

namespace rdfmr {
namespace {

// ---- tiny flag parser -------------------------------------------------------

class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (StartsWith(arg, "--")) {
        std::string key = arg.substr(2);
        if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
          values_[key].push_back(argv[++i]);
        } else {
          values_[key].push_back("");
        }
      } else {
        std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
        ok_ = false;
      }
    }
  }

  bool ok() const { return ok_; }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }
  std::vector<std::string> Keys() const {
    std::vector<std::string> keys;
    for (const auto& [key, value] : values_) keys.push_back(key);
    return keys;
  }
  /// Last occurrence wins for single-valued flags.
  std::string Get(const std::string& key, std::string fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second.back();
  }
  /// Every occurrence, in command-line order (repeatable flags like
  /// serve's --listen).
  std::vector<std::string> GetList(const std::string& key) const {
    auto it = values_.find(key);
    return it == values_.end() ? std::vector<std::string>() : it->second;
  }
  uint64_t GetInt(const std::string& key, uint64_t fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    try {
      return std::stoull(it->second.back());
    } catch (...) {
      std::fprintf(stderr, "bad integer for --%s: %s\n", key.c_str(),
                   it->second.back().c_str());
      return fallback;
    }
  }

 private:
  std::map<std::string, std::vector<std::string>> values_;
  bool ok_ = true;
};

// ---- dataset I/O --------------------------------------------------------------
// (shared with the query service's "load" verb; see service/dataset_io.h)

Result<std::vector<Triple>> ReadDataset(const std::string& path) {
  return service::ReadDatasetFile(path);
}

struct LoadedQuery {
  std::shared_ptr<const GraphPatternQuery> query;
  std::optional<AggregateSpec> aggregate;
};

Result<LoadedQuery> LoadQuery(const Flags& flags) {
  if (flags.Has("query")) {
    RDFMR_ASSIGN_OR_RETURN(std::shared_ptr<const GraphPatternQuery> q,
                           GetTestbedQuery(flags.Get("query")));
    return LoadedQuery{std::move(q), std::nullopt};
  }
  if (flags.Has("sparql")) {
    std::ifstream in(flags.Get("sparql"));
    if (!in) {
      return Status::IoError("cannot open: " + flags.Get("sparql"));
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    RDFMR_ASSIGN_OR_RETURN(
        ParsedQuery parsed,
        ParseSparqlQuery(flags.Get("sparql"), buffer.str()));
    return LoadedQuery{std::make_shared<const GraphPatternQuery>(
                           std::move(parsed.query)),
                       std::move(parsed.aggregate)};
  }
  return Status::InvalidArgument("need --query ID or --sparql FILE");
}

// ---- subcommands ----------------------------------------------------------------

int CmdCatalog() {
  std::printf("%-9s %-16s %s\n", "id", "dataset", "description");
  for (const TestbedEntry& entry : TestbedCatalog()) {
    std::printf("%-9s %-16s %s\n", entry.id.c_str(),
                DatasetFamilyToString(entry.dataset),
                entry.description.c_str());
  }
  return 0;
}

int CmdGenerate(const Flags& flags) {
  if (!flags.Has("out")) {
    std::fprintf(stderr, "generate: need --out FILE\n");
    return 2;
  }
  auto triples = service::GenerateFamilyDataset(flags.Get("family", "bsbm"),
                                                flags.GetInt("scale", 500),
                                                flags.GetInt("seed", 42));
  if (!triples.ok()) {
    std::fprintf(stderr, "%s\n", triples.status().ToString().c_str());
    return 1;
  }
  Status st = service::WriteDatasetFile(flags.Get("out"), *triples);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu triples to %s\n", triples->size(),
              flags.Get("out").c_str());
  return 0;
}

int CmdStats(const Flags& flags) {
  auto triples = ReadDataset(flags.Get("data"));
  if (!triples.ok()) {
    std::fprintf(stderr, "%s\n", triples.status().ToString().c_str());
    return 1;
  }
  GraphStats stats = GraphStats::Compute(*triples);
  std::printf("%s\n\n", stats.Summary().c_str());
  std::printf("%-18s %10s %10s %8s %8s\n", "property", "triples",
              "subjects", "avg-mult", "max-mult");
  for (const auto& [property, ps] : stats.properties()) {
    std::printf("%-18s %10llu %10llu %8.2f %8llu\n", property.c_str(),
                static_cast<unsigned long long>(ps.triple_count),
                static_cast<unsigned long long>(ps.subject_count),
                ps.avg_multiplicity,
                static_cast<unsigned long long>(ps.max_multiplicity));
  }
  return 0;
}

int CmdExplain(const Flags& flags) {
  auto query = LoadQuery(flags);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", query->query->ToString().c_str());
  if (query->aggregate.has_value()) {
    std::printf("aggregate: COUNT(%s?%s) AS ?%s GROUP BY %zu var(s), "
                "HAVING >= %llu\n",
                query->aggregate->distinct ? "DISTINCT " : "",
                query->aggregate->counted_var.c_str(),
                query->aggregate->count_var.c_str(),
                query->aggregate->group_vars.size(),
                static_cast<unsigned long long>(
                    query->aggregate->min_count));
  }
  std::printf("\n");
  for (NtgaStrategy strategy :
       {NtgaStrategy::kEager, NtgaStrategy::kLazyFull,
        NtgaStrategy::kLazyPartial, NtgaStrategy::kLazyAuto}) {
    auto plan = RewriteToNtga(*query->query, strategy);
    if (plan.ok()) {
      std::printf("%s\n", plan->ToString(*query->query).c_str());
    } else {
      std::printf("%s: %s\n", NtgaStrategyToString(strategy),
                  plan.status().ToString().c_str());
    }
  }
  std::printf("relational baseline: %zu star-join cycle(s) + join cycles "
              "(one star-join per MR cycle)%s\n",
              query->query->stars().size(),
              query->aggregate.has_value() ? " + 1 aggregation cycle" : "");

  // Physical job layouts.
  std::printf("\n-- physical plans --\n");
  {
    RelationalOptions rel;
    rel.style = RelationalStyle::kHive;
    auto plan = CompileRelationalPlan(query->query, "base", "tmp", rel);
    if (plan.ok()) {
      std::printf("%s", DescribeWorkflow(plan->workflow).c_str());
    }
  }
  {
    NtgaOptions ntga;
    auto plan = CompileNtgaPlan(query->query, "base", "tmp", ntga);
    if (plan.ok()) {
      std::printf("%s", DescribeWorkflow(plan->workflow).c_str());
    }
  }
  return 0;
}

Result<EngineKind> ParseEngine(const std::string& name) {
  return EngineKindFromString(name);
}

int CmdRun(const Flags& flags) {
  auto query = LoadQuery(flags);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  auto triples = ReadDataset(flags.Get("data"));
  if (!triples.ok()) {
    std::fprintf(stderr, "%s\n", triples.status().ToString().c_str());
    return 1;
  }
  ClusterConfig cluster;
  cluster.num_nodes = static_cast<uint32_t>(flags.GetInt("nodes", 8));
  cluster.disk_per_node = flags.GetInt("disk-mb", 256) << 20;
  cluster.replication = static_cast<uint32_t>(flags.GetInt("repl", 1));
  cluster.block_size = cluster.disk_per_node / 64 + 1;
  cluster.num_threads = static_cast<uint32_t>(flags.GetInt("threads", 1));
  SimDfs dfs(cluster);
  Status st = dfs.WriteFile("base", SerializeTriples(*triples));
  if (!st.ok()) {
    std::fprintf(stderr, "loading base relation: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  // Installed after the base load so op ordinal 1 is the query's first op.
  if (flags.Has("fault-plan")) {
    auto plan = FaultPlan::Parse(flags.Get("fault-plan"));
    if (!plan.ok()) {
      std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
      return 2;
    }
    Status installed = dfs.SetFaultPlan(*plan);
    if (!installed.ok()) {
      std::fprintf(stderr, "%s\n", installed.ToString().c_str());
      return 2;
    }
    std::printf("fault plan        : %s\n", plan->ToString().c_str());
  }

  auto kind = ParseEngine(flags.Get("engine", "lazy"));
  if (!kind.ok()) {
    std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
    return 2;
  }
  EngineOptions options;
  options.kind = *kind;
  options.phi_partitions =
      static_cast<uint32_t>(flags.GetInt("phi", 1024));
  // Flags passed explicitly on the command line pin the runtime values
  // against RDFMR_THREADS / RDFMR_MAX_ATTEMPTS overrides.
  if (flags.Has("threads")) {
    options.runtime.num_threads =
        static_cast<uint32_t>(flags.GetInt("threads", 1));
    options.runtime.cli_pinned = true;
  }
  if (flags.Has("max-attempts")) {
    options.runtime.max_attempts =
        static_cast<uint32_t>(flags.GetInt("max-attempts", 0));
    options.runtime.cli_pinned = true;
  }
  const std::string disk_check = flags.Get("disk-check", "none");
  if (disk_check == "degrade") {
    options.disk_pressure = DiskPressurePolicy::kDegrade;
  } else if (disk_check == "fail-fast") {
    options.disk_pressure = DiskPressurePolicy::kFailFast;
  } else if (disk_check != "none" && !disk_check.empty()) {
    std::fprintf(stderr,
                 "bad --disk-check: %s (want none|degrade|fail-fast)\n",
                 disk_check.c_str());
    return 2;
  }
  ExecRequest request;
  request.payload = ExecPayload::kSingle;
  request.query = query->query;
  request.aggregate = query->aggregate;

  if (flags.Has("explain")) {
    // Score the candidate table against the dataset's statistics catalog
    // and exit without running anything.
    GraphStats stats = GraphStats::Compute(*triples);
    auto base_size = dfs.FileSize("base");
    auto choice = ChoosePlan(request, stats, base_size.ok() ? *base_size : 0,
                             dfs.UsedBytes(), cluster, options);
    if (!choice.ok()) {
      std::fprintf(stderr, "%s\n", choice.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", RenderPlanChoice(*choice).c_str());
    return 0;
  }

  Trace trace;
  const bool tracing = flags.Has("trace");
  RunContext ctx;
  if (tracing) {
    ctx = RunContext::ForTrace(&trace);
    EnableOperatorMetrics(true);
  }
  auto exec = Exec(&dfs, "base", request, options, ctx);
  if (tracing) {
    const std::string path = flags.Get("trace");
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write trace file: %s\n", path.c_str());
      return 1;
    }
    out << trace.ToChromeJson();
    std::printf("trace             : wrote %s (load in chrome://tracing)\n",
                path.c_str());
  }
  if (!exec.ok()) {
    std::fprintf(stderr, "%s\n", exec.status().ToString().c_str());
    return 1;
  }
  const ExecStats& s = exec->stats;
  if (!s.preflight.empty()) {
    std::printf("preflight         : %s\n", s.preflight.c_str());
  }
  if (!s.degraded_from.empty()) {
    std::printf("degraded from     : %s\n", s.degraded_from.c_str());
  }
  if (!s.ok()) {
    std::printf("execution FAILED at job %d of %zu: %s\n",
                s.failed_job_index, s.planned_cycles,
                s.status.ToString().c_str());
    return 1;
  }
  std::printf("engine            : %s\n", s.engine.c_str());
  if (!s.chosen_engine.empty()) {
    std::printf("plan chooser      : %s\n", s.plan_rationale.c_str());
  }
  std::printf("MR cycles         : %zu\n", s.mr_cycles);
  std::printf("full scans of base: %u\n", s.full_scans);
  std::printf("HDFS read         : %s\n",
              HumanBytes(s.hdfs_read_bytes).c_str());
  std::printf("shuffle           : %s\n",
              HumanBytes(s.shuffle_bytes).c_str());
  std::printf("HDFS write        : %s (replicated %s)\n",
              HumanBytes(s.hdfs_write_bytes).c_str(),
              HumanBytes(s.hdfs_write_bytes_replicated).c_str());
  std::printf("star-phase output : %s\n",
              HumanBytes(s.star_phase_write_bytes).c_str());
  std::printf("final output      : %s\n",
              HumanBytes(s.final_output_bytes).c_str());
  std::printf("redundancy factor : %.2f (final %.2f)\n",
              s.redundancy_factor, s.final_redundancy_factor);
  std::printf("modeled time      : %.1f s\n", s.modeled_seconds);
  std::printf("runtime phases    : map %.3fs, sort %.3fs, reduce %.3fs "
              "(host wall, %u thread(s))\n",
              s.map_seconds, s.shuffle_sort_seconds, s.reduce_seconds,
              cluster.num_threads);
  if (s.tasks_retried > 0) {
    std::printf("fault recovery    : %llu op(s) retried over %llu attempts, "
                "%s wasted, %.1f s modeled backoff\n",
                (unsigned long long)s.tasks_retried,
                (unsigned long long)s.task_attempts,
                HumanBytes(s.wasted_bytes).c_str(),
                s.retry_backoff_seconds);
  }
  std::printf("answers           : %zu\n", exec->answers.size());
  uint64_t show = flags.GetInt("show-answers", 0);
  for (const Solution& sol : exec->answers) {
    if (show == 0) break;
    std::printf("  %s\n", sol.Serialize().c_str());
    --show;
  }
  return 0;
}

int CmdAdvise(const Flags& flags) {
  auto query = LoadQuery(flags);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  auto triples = ReadDataset(flags.Get("data"));
  if (!triples.ok()) {
    std::fprintf(stderr, "%s\n", triples.status().ToString().c_str());
    return 1;
  }
  GraphStats stats = GraphStats::Compute(*triples);
  ClusterConfig cluster;
  cluster.num_nodes = static_cast<uint32_t>(flags.GetInt("nodes", 8));
  cluster.num_reducers = cluster.num_nodes;
  StrategyAdvice advice = AdviseStrategy(*query->query, stats, cluster);
  std::printf("graph   : %s\n", stats.Summary().c_str());
  std::printf("advice  : %s, phi_m=%u\n",
              NtgaStrategyToString(advice.strategy), advice.phi_partitions);
  std::printf("          %s\n", advice.rationale.c_str());
  return 0;
}

int CmdBatch(const Flags& flags) {
  std::vector<std::shared_ptr<const GraphPatternQuery>> queries;
  for (const std::string& id : Split(flags.Get("queries"), ',')) {
    auto q = GetTestbedQuery(std::string(Trim(id)));
    if (!q.ok()) {
      std::fprintf(stderr, "%s\n", q.status().ToString().c_str());
      return 1;
    }
    queries.push_back(*q);
  }
  if (queries.empty()) {
    std::fprintf(stderr, "batch: need --queries ID,ID,...\n");
    return 2;
  }
  auto triples = ReadDataset(flags.Get("data"));
  if (!triples.ok()) {
    std::fprintf(stderr, "%s\n", triples.status().ToString().c_str());
    return 1;
  }
  ClusterConfig cluster;
  cluster.num_nodes = static_cast<uint32_t>(flags.GetInt("nodes", 8));
  cluster.disk_per_node = flags.GetInt("disk-mb", 256) << 20;
  cluster.replication = static_cast<uint32_t>(flags.GetInt("repl", 1));
  cluster.block_size = cluster.disk_per_node / 64 + 1;
  cluster.num_threads = static_cast<uint32_t>(flags.GetInt("threads", 1));
  SimDfs dfs(cluster);
  if (!dfs.WriteFile("base", SerializeTriples(*triples)).ok()) return 1;

  auto kind = ParseEngine(flags.Get("engine", "lazy"));
  if (!kind.ok()) {
    std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
    return 2;
  }
  EngineOptions options;
  options.kind = *kind;
  ExecRequest request;
  request.payload = ExecPayload::kBatch;
  request.queries = queries;
  auto batch = Exec(&dfs, "base", request, options);
  if (!batch.ok()) {
    std::fprintf(stderr, "%s\n", batch.status().ToString().c_str());
    return 1;
  }
  if (!batch->stats.ok()) {
    std::printf("batch FAILED: %s\n",
                batch->stats.status.ToString().c_str());
    return 1;
  }
  std::printf("shared batch: %zu MR cycles, %u full scan(s), %s read, "
              "%s shuffled, %s written\n",
              batch->stats.mr_cycles, batch->stats.full_scans,
              HumanBytes(batch->stats.hdfs_read_bytes).c_str(),
              HumanBytes(batch->stats.shuffle_bytes).c_str(),
              HumanBytes(batch->stats.hdfs_write_bytes).c_str());
  for (size_t q = 0; q < queries.size(); ++q) {
    std::printf("  %-9s %zu answers\n", queries[q]->name().c_str(),
                batch->per_query[q].size());
  }
  return 0;
}

int CmdIndex(const std::string& in_path, const std::string& out_path) {
  if (!storage::IsRdxPath(out_path)) {
    std::fprintf(stderr, "index: output must end in %s, got %s\n",
                 storage::kRdxExtension, out_path.c_str());
    return 2;
  }
  auto triples = ReadDataset(in_path);
  if (!triples.ok()) {
    std::fprintf(stderr, "%s\n", triples.status().ToString().c_str());
    return 1;
  }
  Status st = storage::WriteRdxFile(out_path, *triples);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  // Reopen through the reader so what we report is what a consumer will
  // validate (checksums included).
  auto reader = storage::RdxReader::Open(out_path);
  if (!reader.ok()) {
    std::fprintf(stderr, "index: verification failed: %s\n",
                 reader.status().ToString().c_str());
    return 1;
  }
  std::printf("indexed %s -> %s: %zu triple(s), %zu term(s), "
              "%zu propert(ies), %llu byte(s)\n",
              in_path.c_str(), out_path.c_str(), (*reader)->triple_count(),
              (*reader)->term_count(), (*reader)->property_count(),
              static_cast<unsigned long long>((*reader)->file_bytes()));
  return 0;
}

int CmdServe(const Flags& flags) {
  service::ServerOptions server_options;
  if (flags.Has("socket")) {
    server_options.listeners.push_back(
        net::Address::Unix(flags.Get("socket")));
  }
  for (const std::string& spec : flags.GetList("listen")) {
    Result<net::Address> address = net::Address::Parse(spec);
    if (!address.ok()) {
      std::fprintf(stderr, "serve: %s\n",
                   address.status().ToString().c_str());
      return 2;
    }
    server_options.listeners.push_back(*std::move(address));
  }
  if (server_options.listeners.empty()) {
    std::fprintf(stderr,
                 "serve: need --listen unix:PATH|tcp:HOST:PORT "
                 "(repeatable) or --socket PATH\n");
    return 2;
  }
  server_options.max_connections =
      static_cast<uint32_t>(flags.GetInt("max-connections", 256));
  server_options.idle_timeout_ms = flags.GetInt("idle-timeout-ms", 0);
  service::ServiceConfig config;
  config.cluster.num_nodes =
      static_cast<uint32_t>(flags.GetInt("nodes", 8));
  config.cluster.disk_per_node = flags.GetInt("disk-mb", 256) << 20;
  config.cluster.replication =
      static_cast<uint32_t>(flags.GetInt("repl", 1));
  config.cluster.block_size = config.cluster.disk_per_node / 64 + 1;
  config.cluster.num_threads =
      static_cast<uint32_t>(flags.GetInt("threads", 1));
  config.max_concurrent =
      static_cast<uint32_t>(flags.GetInt("max-concurrent", 0));
  config.queue_bound =
      static_cast<uint32_t>(flags.GetInt("queue-bound", 64));
  config.result_cache_bytes = flags.GetInt("result-cache-mb", 16) << 20;
  config.plan_cache_entries = flags.GetInt("plan-cache-entries", 128);
  config.default_deadline_ms = flags.GetInt("deadline-ms", 0);

  service::QueryService query_service(config);
  if (flags.Has("data")) {
    std::string name = flags.Get("dataset", "default");
    std::string path = flags.Get("data");
    Result<service::DatasetInfo> info = Status::Unknown("unreachable");
    if (storage::IsRdxPath(path)) {
      // Mapped mode: the file is validated now (milliseconds regardless
      // of size) and the first query scans straight over the mapping;
      // --materialize restores the decode-on-first-query escape hatch.
      info = query_service.RegisterMappedDataset(name, path,
                                                 flags.Has("materialize"));
    } else {
      info = query_service.RegisterDataset(
          name, [path] { return service::ReadDatasetFile(path); });
    }
    if (!info.ok()) {
      std::fprintf(stderr, "%s\n", info.status().ToString().c_str());
      return 1;
    }
    std::printf("registered dataset %s (epoch %llu) from %s%s\n",
                name.c_str(),
                static_cast<unsigned long long>(info->epoch), path.c_str(),
                info->mapped ? " (memory-mapped)" : "");
  }
  service::ServiceServer server(&query_service, std::move(server_options));
  Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::string endpoints;
  for (const net::Address& address : server.bound_addresses()) {
    if (!endpoints.empty()) endpoints += " ";
    endpoints += address.ToString();  // TCP port 0 already resolved
  }
  std::printf("rdfmr service listening on %s (%u worker(s), queue bound "
              "%u)\n",
              endpoints.c_str(), query_service.max_concurrent(),
              config.queue_bound);
  std::fflush(stdout);
  server.Wait();
  server.Stop();
  std::printf("rdfmr service stopped\n");
  return 0;
}

int CmdClient(const Flags& flags) {
  const std::string target = flags.Has("connect")
                                 ? flags.Get("connect")
                                 : flags.Get("socket");
  if (target.empty()) {
    std::fprintf(stderr,
                 "client: need --connect unix:PATH|tcp:HOST:PORT "
                 "(or --socket PATH)\n");
    return 2;
  }
  // Retry transient connect failures (server still starting up) with a
  // doubling backoff; 1 attempt = the old fail-fast behavior.
  const uint32_t attempts =
      static_cast<uint32_t>(flags.GetInt("connect-retries", 1));
  auto client = service::ServiceClient::ConnectWithRetry(target, attempts);
  if (!client.ok()) {
    std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
    return 1;
  }

  // Collect the request lines: one --request or all of stdin.
  std::vector<std::string> lines;
  if (flags.Has("request")) {
    lines.push_back(flags.Get("request"));
  } else {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!line.empty()) lines.push_back(line);
    }
  }

  int failures = 0;
  if (flags.Has("pipeline")) {
    // All requests in flight at once; responses printed back in request
    // order (CallPipelined re-matches them by their echoed "id").
    std::vector<JsonValue> requests;
    requests.reserve(lines.size());
    for (const std::string& line : lines) {
      Result<JsonValue> request = ParseJson(line);
      if (!request.ok()) {
        std::fprintf(stderr, "%s\n", request.status().ToString().c_str());
        return 1;
      }
      requests.push_back(*std::move(request));
    }
    auto responses = client->CallPipelined(std::move(requests));
    if (!responses.ok()) {
      std::fprintf(stderr, "%s\n", responses.status().ToString().c_str());
      return 1;
    }
    for (const JsonValue& response : *responses) {
      std::printf("%s\n", response.Dump().c_str());
    }
    return 0;
  }
  for (const std::string& line : lines) {
    auto response = client->CallLine(line);
    if (!response.ok()) {
      std::fprintf(stderr, "%s\n", response.status().ToString().c_str());
      ++failures;
      continue;
    }
    std::printf("%s\n", response->c_str());
  }
  return failures == 0 ? 0 : 1;
}

constexpr const char* kSubcommands[] = {
    "catalog", "generate", "index", "stats",  "explain",
    "advise",  "run",      "batch", "serve",  "client",
};

/// Valid flags per subcommand, for the unknown-flag diagnostic (a typo
/// like `--thread` must not be silently ignored).
const std::map<std::string, std::vector<const char*>>& SubcommandFlags() {
  static const auto* flags =
      new std::map<std::string, std::vector<const char*>>{
          {"catalog", {}},
          {"generate", {"family", "scale", "seed", "out"}},
          {"stats", {"data"}},
          {"explain", {"query", "sparql"}},
          {"advise", {"query", "sparql", "data", "nodes"}},
          {"run",
           {"query", "sparql", "data", "engine", "nodes", "disk-mb", "repl",
            "phi", "threads", "show-answers", "max-attempts", "fault-plan",
            "disk-check", "trace", "explain"}},
          {"batch",
           {"queries", "data", "engine", "nodes", "disk-mb", "repl",
            "threads"}},
          {"serve",
           {"socket", "listen", "max-connections", "idle-timeout-ms",
            "nodes", "disk-mb", "repl", "threads", "max-concurrent",
            "queue-bound", "result-cache-mb", "plan-cache-entries",
            "deadline-ms", "dataset", "data", "materialize"}},
          {"client",
           {"socket", "connect", "connect-retries", "pipeline", "request"}},
      };
  return *flags;
}

int Usage() {
  std::fprintf(stderr,
               "usage: rdfmr "
               "<catalog|generate|index|stats|explain|advise|run|batch|"
               "serve|client> [flags]\n(see the header of tools/rdfmr.cc)\n");
  return 2;
}

/// Distinct exit code for an unrecognized subcommand (sysexits' EX_USAGE),
/// so scripts can tell "bad subcommand" from "bad flags" (2).
constexpr int kUnknownSubcommandExit = 64;

int UnknownSubcommand(const std::string& command) {
  std::fprintf(stderr, "rdfmr: unknown subcommand '%s'\n", command.c_str());
  std::fprintf(stderr, "valid subcommands:");
  for (const char* name : kSubcommands) std::fprintf(stderr, " %s", name);
  std::fprintf(stderr, "\n");
  return kUnknownSubcommandExit;
}

/// Mirrors UnknownSubcommand for flags: names the offending token, lists
/// every flag the subcommand accepts, exits with the same distinct code.
int UnknownFlag(const std::string& command, const std::string& flag,
                const std::vector<const char*>& valid) {
  std::fprintf(stderr, "rdfmr %s: unknown flag '--%s'\n", command.c_str(),
               flag.c_str());
  if (valid.empty()) {
    std::fprintf(stderr, "%s takes no flags\n", command.c_str());
  } else {
    std::fprintf(stderr, "valid flags:");
    for (const char* name : valid) std::fprintf(stderr, " --%s", name);
    std::fprintf(stderr, "\n");
  }
  return kUnknownSubcommandExit;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  if (command == "index") {
    // Positional form: rdfmr index IN OUT.rdx (no flags).
    if (argc != 4 || StartsWith(argv[2], "--") || StartsWith(argv[3], "--")) {
      std::fprintf(stderr, "usage: rdfmr index IN[.nt|.tsv] OUT.rdx\n");
      return 2;
    }
    return CmdIndex(argv[2], argv[3]);
  }
  Flags flags(argc, argv, 2);
  if (!flags.ok()) return 2;
  auto valid = SubcommandFlags().find(command);
  if (valid != SubcommandFlags().end()) {
    for (const std::string& key : flags.Keys()) {
      bool known = false;
      for (const char* name : valid->second) {
        if (key == name) {
          known = true;
          break;
        }
      }
      if (!known) return UnknownFlag(command, key, valid->second);
    }
  }
  if (command == "catalog") return CmdCatalog();
  if (command == "generate") return CmdGenerate(flags);
  if (command == "stats") return CmdStats(flags);
  if (command == "explain") return CmdExplain(flags);
  if (command == "advise") return CmdAdvise(flags);
  if (command == "run") return CmdRun(flags);
  if (command == "batch") return CmdBatch(flags);
  if (command == "serve") return CmdServe(flags);
  if (command == "client") return CmdClient(flags);
  return UnknownSubcommand(command);
}

}  // namespace
}  // namespace rdfmr

int main(int argc, char** argv) { return rdfmr::Main(argc, argv); }
