// rdfmr_fuzz — cross-engine differential fuzzing driver.
//
//   rdfmr_fuzz --seed N --cases M
//       Run M seeded-random (graph, query) cases through every engine kind
//       x {1, 4} host threads, comparing answers against the in-memory
//       oracle and checking the metrics-invariant catalog. Failing cases
//       are shrunk and printed as ready-to-paste C++ test bodies. Exit 0
//       iff every case is clean.
//
//   Options:
//     --seed N          PRNG stream (default 1); every case replays
//                       standalone from (seed, index).
//     --cases M         number of cases (default 100)
//     --min-unbound K   force at least K unbound-property patterns per query
//     --max-failures K  stop after K failures (default 1; 0 = run all)
//     --no-shrink       report failures raw, without minimization
//     --quiet           suppress per-case progress lines
//     --inject-bug      self-test: flip the β group-filter's unbound-pattern
//                       verdict (a seeded NTGA defect) and require the
//                       harness to catch it AND shrink it to <= 10 triples;
//                       exit 0 iff it does.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "common/strings.h"
#include "ntga/operators.h"
#include "testing/differential.h"

namespace rdfmr {
namespace {

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (StartsWith(arg, "--")) {
        std::string key = arg.substr(2);
        if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
          values_[key] = argv[++i];
        } else {
          values_[key] = "";
        }
      } else {
        std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
        ok_ = false;
      }
    }
  }

  bool ok() const { return ok_; }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }
  uint64_t GetInt(const std::string& key, uint64_t fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    try {
      return std::stoull(it->second);
    } catch (...) {
      std::fprintf(stderr, "bad integer for --%s: %s\n", key.c_str(),
                   it->second.c_str());
      return fallback;
    }
  }

 private:
  std::map<std::string, std::string> values_;
  bool ok_ = true;
};

int FuzzMain(int argc, char** argv) {
  Flags flags(argc, argv);
  if (!flags.ok()) return 2;

  fuzz::FuzzOptions options;
  options.seed = flags.GetInt("seed", 1);
  options.cases = flags.GetInt("cases", 100);
  options.query.min_unbound = flags.GetInt("min-unbound", 0);
  options.max_failures = flags.GetInt("max-failures", 1);
  options.shrink = !flags.Has("no-shrink");
  const bool inject_bug = flags.Has("inject-bug");
  std::ostream* log = flags.Has("quiet") ? nullptr : &std::cout;

  if (inject_bug) {
    // Every case must route through the β group-filter's unbound branch
    // for the seeded defect to be reachable.
    if (options.query.min_unbound == 0) options.query.min_unbound = 1;
    SetBetaGroupFilterFlipForTesting(true);
  }
  fuzz::FuzzReport report = fuzz::RunFuzz(options, log);
  SetBetaGroupFilterFlipForTesting(false);

  if (inject_bug) {
    if (report.failures.empty()) {
      std::fprintf(stderr,
                   "FAIL: injected beta group-filter bug went undetected "
                   "over %llu case(s)\n",
                   (unsigned long long)report.cases_run);
      return 1;
    }
    const fuzz::FuzzFailure& failure = report.failures.front();
    if (options.shrink && failure.shrunk.triples.size() > 10) {
      std::fprintf(stderr,
                   "FAIL: injected bug caught but shrunk only to %zu "
                   "triples (want <= 10)\n",
                   failure.shrunk.triples.size());
      return 1;
    }
    std::printf("OK: injected bug caught in case %llu, shrunk to %zu "
                "triple(s) / %zu pattern(s)\n",
                (unsigned long long)failure.case_index,
                failure.shrunk.triples.size(),
                failure.shrunk.patterns.size());
    return 0;
  }

  if (log == nullptr) std::printf("%s\n", report.Summary().c_str());
  return report.ok() ? 0 : 1;
}

}  // namespace
}  // namespace rdfmr

int main(int argc, char** argv) { return rdfmr::FuzzMain(argc, argv); }
