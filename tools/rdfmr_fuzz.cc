// rdfmr_fuzz — cross-engine differential fuzzing driver.
//
//   rdfmr_fuzz --seed N --cases M
//       Run M seeded-random (graph, query) cases through every engine kind
//       x {1, 4} host threads, comparing answers against the in-memory
//       oracle and checking the metrics-invariant catalog. Failing cases
//       are shrunk and printed as ready-to-paste C++ test bodies. Exit 0
//       iff every case is clean.
//
//   Options:
//     --seed N          PRNG stream (default 1); every case replays
//                       standalone from (seed, index).
//     --cases M         number of cases (default 100)
//     --min-unbound K   force at least K unbound-property patterns per query
//     --max-failures K  stop after K failures (default 1; 0 = run all)
//     --no-shrink       report failures raw, without minimization
//     --quiet           suppress per-case progress lines
//     --faults          re-run every engine x thread cell under a seeded
//                       probabilistic FaultPlan with task retry enabled:
//                       a faulty run that survives must match the
//                       fault-free run byte-for-byte on answers and
//                       deterministic stats; retry exhaustion is skipped.
//     --inject-bug      self-test: flip the β group-filter's unbound-pattern
//                       verdict (a seeded NTGA defect) and require the
//                       harness to catch it AND shrink it to <= 10 triples;
//                       exit 0 iff it does.
//     --service         replay every case through a live `rdfmr serve`
//                       socket (spun up in-process) instead of the direct
//                       engine calls, comparing the served answers against
//                       the in-memory oracle and requiring an immediate
//                       byte-identical result-cache replay. Exercises the
//                       whole protocol stack: load (epoch bump per case),
//                       query with inline patterns, caches, shutdown.
//     --format          storage-format differential: each case is indexed
//                       into a temporary .rdx file, memory-mapped back,
//                       and required to reproduce the exact input relation
//                       (vector equality), a correct per-property index, a
//                       deterministic image, and oracle-identical answers
//                       evaluated over the decoded triples. Every case then
//                       runs one engine kind (rotating through all six)
//                       twice — once over a DFS holding the decoded triple
//                       vector, once over a DFS with the .rdx mapping
//                       MOUNTED (the zero-materialization scan path) — and
//                       requires byte-identical answers against the oracle
//                       and byte-identical deterministic ExecStats between
//                       the two paths.
//     --auto            plan-chooser differential: every case runs once
//                       with engine=auto and once with the engine the
//                       chooser reports having picked, on separate fresh
//                       DFS instances. Both runs must match the in-memory
//                       oracle, and the auto run's deterministic stats
//                       must be byte-identical to the explicit run's.
//                       Vacuity gate: a sweep that never picks at least
//                       two distinct engine kinds fails loudly (the
//                       chooser would be a constant, not a cost model).
//     --trace-dir DIR   write one Chrome trace-event JSON file per
//                       fault-free engine x thread run into DIR
//                       (<case>-<engine>-t<threads>.json); DIR must exist.

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "engine/engine.h"
#include "ntga/operators.h"
#include "query/matcher.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/query_service.h"
#include "service/server.h"
#include "storage/mapped_dataset.h"
#include "storage/rdx_reader.h"
#include "storage/rdx_writer.h"
#include "testing/differential.h"
#include "testing/invariants.h"

namespace rdfmr {
namespace {

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (StartsWith(arg, "--")) {
        std::string key = arg.substr(2);
        if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
          values_[key] = argv[++i];
        } else {
          values_[key] = "";
        }
      } else {
        std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
        ok_ = false;
      }
    }
  }

  bool ok() const { return ok_; }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }
  std::string Get(const std::string& key, std::string fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  uint64_t GetInt(const std::string& key, uint64_t fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    try {
      return std::stoull(it->second);
    } catch (...) {
      std::fprintf(stderr, "bad integer for --%s: %s\n", key.c_str(),
                   it->second.c_str());
      return fallback;
    }
  }

 private:
  std::map<std::string, std::string> values_;
  bool ok_ = true;
};

/// Serializes a solution set into the sorted line vector the protocol
/// emits for "answers".
std::vector<std::string> AnswerLines(const SolutionSet& answers) {
  std::vector<std::string> lines;
  lines.reserve(answers.size());
  for (const Solution& solution : answers) {
    lines.push_back(solution.Serialize());
  }
  return lines;
}

std::vector<std::string> AnswerLines(const JsonValue& array) {
  std::vector<std::string> lines;
  if (!array.is_array()) return lines;
  lines.reserve(array.AsArray().size());
  for (const JsonValue& line : array.AsArray()) {
    lines.push_back(line.AsString());
  }
  return lines;
}

/// Replays `cases` through a live socket server against the oracle.
/// Every case loads a fresh epoch of the "fuzz" dataset, queries it with
/// a couple of engine kinds, and immediately re-queries expecting a
/// byte-identical result-cache replay.
int RunServiceMode(const fuzz::FuzzOptions& options, std::ostream* log) {
  service::ServiceConfig config;
  config.cluster = options.diff.cluster;
  config.max_concurrent = 2;
  service::QueryService query_service(config);
  const std::string socket_path =
      StringFormat("/tmp/rdfmr-fuzz-%d.sock", static_cast<int>(::getpid()));
  service::ServiceServer server(&query_service, socket_path);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }
  auto client = service::ServiceClient::Connect(socket_path);
  if (!client.ok()) {
    std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
    return 1;
  }

  const std::vector<std::pair<std::string, EngineKind>> engines = {
      {"lazy", EngineKind::kNtgaLazy}, {"hive", EngineKind::kHive}};
  uint64_t failures = 0;
  auto fail = [&failures, log](uint64_t index, const std::string& what) {
    ++failures;
    if (log != nullptr) {
      *log << "case " << index << " FAILED: " << what << "\n";
    } else {
      std::fprintf(stderr, "case %llu FAILED: %s\n",
                   (unsigned long long)index, what.c_str());
    }
  };

  uint64_t index = 0;
  for (; index < options.cases; ++index) {
    fuzz::FuzzCase fuzz_case = fuzz::MakeCase(options, index);
    auto query = GraphPatternQuery::Create(fuzz_case.name,
                                           fuzz_case.patterns);
    if (!query.ok()) continue;  // generator produced a degenerate case

    JsonValue load = JsonValue::MakeObject();
    load.Set("verb", "load");
    load.Set("dataset", "fuzz");
    JsonValue rows = JsonValue::MakeArray();
    for (const Triple& t : fuzz_case.triples) {
      JsonValue row = JsonValue::MakeArray();
      row.Append(t.subject);
      row.Append(t.property);
      row.Append(t.object);
      rows.Append(std::move(row));
    }
    load.Set("triples", std::move(rows));
    auto loaded = client->Call(load);
    if (!loaded.ok() || !loaded->GetBool("ok")) {
      fail(index, "load verb rejected: " +
                      (loaded.ok() ? loaded->Dump()
                                   : loaded.status().ToString()));
      break;
    }

    SolutionSet oracle =
        fuzz_case.aggregate.has_value()
            ? EvaluateAggregateInMemory(*query, *fuzz_case.aggregate,
                                        fuzz_case.triples)
            : EvaluateQueryInMemory(*query, fuzz_case.triples);
    const std::vector<std::string> expected = AnswerLines(oracle);

    for (const auto& [engine_name, kind] : engines) {
      (void)kind;
      JsonValue request = JsonValue::MakeObject();
      request.Set("verb", "query");
      request.Set("dataset", "fuzz");
      request.Set("name", fuzz_case.name);
      JsonValue patterns = JsonValue::MakeArray();
      for (const TriplePattern& tp : fuzz_case.patterns) {
        patterns.Append(service::PatternToJson(tp));
      }
      request.Set("patterns", std::move(patterns));
      if (fuzz_case.aggregate.has_value()) {
        request.Set("aggregate",
                    service::AggregateToJson(*fuzz_case.aggregate));
      }
      request.Set("engine", engine_name);
      request.Set("phi",
                  static_cast<uint64_t>(options.diff.phi_partitions));
      auto response = client->Call(request);
      if (!response.ok()) {
        fail(index, engine_name + ": " + response.status().ToString());
        break;
      }
      if (!response->GetBool("ok") || !response->Get("stats").GetBool("ok")) {
        fail(index, engine_name + ": served run failed: " +
                        response->Dump());
        break;
      }
      if (AnswerLines(response->Get("answers")) != expected) {
        fail(index,
             engine_name + ": served answers diverge from the oracle (" +
                 std::to_string(response->GetUint("num_answers")) + " vs " +
                 std::to_string(expected.size()) + ")");
        break;
      }
      // Replay: must be a result-cache hit with byte-identical answers.
      auto replay = client->Call(request);
      if (!replay.ok() || !replay->GetBool("ok") ||
          !replay->GetBool("result_cache_hit") ||
          AnswerLines(replay->Get("answers")) != expected) {
        fail(index, engine_name + ": result-cache replay diverged");
        break;
      }
    }
    if (options.max_failures > 0 && failures >= options.max_failures) break;
    if (log != nullptr && (index + 1) % 10 == 0) {
      *log << "service: " << (index + 1) << "/" << options.cases
           << " cases clean\n";
    }
  }

  JsonValue shutdown = JsonValue::MakeObject();
  shutdown.Set("verb", "shutdown");
  (void)client->Call(shutdown);
  server.Wait();
  server.Stop();
  std::printf("service mode: %llu case(s), %llu failure(s)\n",
              (unsigned long long)std::min(index + 1, options.cases),
              (unsigned long long)failures);
  return failures == 0 ? 0 : 1;
}

/// Storage-format differential: index -> mmap-load -> compare with the
/// in-memory oracle. Catches any writer/reader disagreement the seeded
/// generator can produce (odd characters in terms, empty relations,
/// skewed property multiplicities, ...).
int RunFormatMode(const fuzz::FuzzOptions& options, std::ostream* log) {
  const std::string path = StringFormat("/tmp/rdfmr-fuzz-format-%d.rdx",
                                        static_cast<int>(::getpid()));
  uint64_t failures = 0;
  auto fail = [&failures, log](uint64_t index, const std::string& what) {
    ++failures;
    if (log != nullptr) {
      *log << "case " << index << " FAILED: " << what << "\n";
    } else {
      std::fprintf(stderr, "case %llu FAILED: %s\n",
                   (unsigned long long)index, what.c_str());
    }
  };

  // One engine kind per case, rotating so a full default run (100 cases)
  // covers every kind many times over on both scan paths.
  const std::vector<EngineKind> engine_ring = {
      EngineKind::kPig,          EngineKind::kHive,
      EngineKind::kNtgaEager,    EngineKind::kNtgaLazyFull,
      EngineKind::kNtgaLazyPartial, EngineKind::kNtgaLazy};

  uint64_t index = 0;
  for (; index < options.cases; ++index) {
    fuzz::FuzzCase fuzz_case = fuzz::MakeCase(options, index);
    auto built =
        GraphPatternQuery::Create(fuzz_case.name, fuzz_case.patterns);
    if (!built.ok()) continue;  // generator produced a degenerate case
    auto query =
        std::make_shared<const GraphPatternQuery>(std::move(*built));

    auto image = storage::BuildRdxImage(fuzz_case.triples);
    if (!image.ok()) {
      fail(index, "BuildRdxImage: " + image.status().ToString());
      break;
    }
    auto again = storage::BuildRdxImage(fuzz_case.triples);
    if (!again.ok() || *again != *image) {
      fail(index, "indexing is not deterministic");
      break;
    }
    Status written = storage::WriteRdxFile(path, fuzz_case.triples);
    if (!written.ok()) {
      fail(index, "WriteRdxFile: " + written.ToString());
      break;
    }
    auto reader = storage::RdxReader::Open(path);
    if (!reader.ok()) {
      fail(index, "Open: " + reader.status().ToString());
      break;
    }

    const std::vector<Triple> decoded = (*reader)->Triples();
    if (decoded != fuzz_case.triples) {
      fail(index, StringFormat(
                      "decoded relation diverges: %zu vs %zu triple(s)",
                      decoded.size(), fuzz_case.triples.size()));
      break;
    }
    // The per-property index must be exactly the vertical partition.
    size_t indexed_rows = 0;
    bool index_ok = true;
    for (std::string_view property : (*reader)->Properties()) {
      std::vector<uint32_t> expected_rows;
      for (size_t i = 0; i < fuzz_case.triples.size(); ++i) {
        if (fuzz_case.triples[i].property == property) {
          expected_rows.push_back(static_cast<uint32_t>(i));
        }
      }
      if ((*reader)->PropertyPostings(property) != expected_rows) {
        fail(index, "property index diverges for '" +
                        std::string(property) + "'");
        index_ok = false;
        break;
      }
      indexed_rows += expected_rows.size();
    }
    if (!index_ok) break;
    if (indexed_rows != fuzz_case.triples.size()) {
      fail(index, "property index does not cover the relation");
      break;
    }

    // Oracle differential over the DECODED triples: mapped data answers
    // queries exactly like the original in-memory relation.
    SolutionSet oracle =
        fuzz_case.aggregate.has_value()
            ? EvaluateAggregateInMemory(*query, *fuzz_case.aggregate,
                                        fuzz_case.triples)
            : EvaluateQueryInMemory(*query, fuzz_case.triples);
    SolutionSet mapped =
        fuzz_case.aggregate.has_value()
            ? EvaluateAggregateInMemory(*query, *fuzz_case.aggregate,
                                        decoded)
            : EvaluateQueryInMemory(*query, decoded);
    if (AnswerLines(mapped) != AnswerLines(oracle)) {
      fail(index, "answers over the mapped relation diverge from oracle");
      break;
    }

    // Zero-materialization scan differential: the same engine must produce
    // byte-identical answers (vs the oracle) and byte-identical
    // deterministic ExecStats whether the base relation is a decoded
    // triple vector written into the DFS or the .rdx mapping mounted
    // directly (records decoded lazily out of the mapped postings).
    const EngineKind kind = engine_ring[index % engine_ring.size()];
    const std::string tag =
        std::string(EngineKindToString(kind)) + ": ";
    EngineOptions engine_options;
    engine_options.kind = kind;
    engine_options.phi_partitions = options.diff.phi_partitions;
    engine_options.runtime.num_threads = 1;

    SimDfs decoded_dfs(options.diff.cluster);
    Status wrote = decoded_dfs.WriteFile("base", SerializeTriples(decoded));
    SimDfs mapped_dfs(options.diff.cluster);
    Status mounted = mapped_dfs.MountMapped(
        "base", std::make_shared<const storage::MappedDataset>(*reader));
    if (!wrote.ok() || !mounted.ok()) {
      fail(index, tag + "loading base relations: " +
                      (wrote.ok() ? mounted : wrote).ToString());
      break;
    }
    auto run = [&](SimDfs* dfs) {
      return fuzz_case.aggregate.has_value()
                 ? RunAggregateQuery(dfs, "base", query,
                                     *fuzz_case.aggregate, engine_options)
                 : RunQuery(dfs, "base", query, engine_options);
    };
    Result<Execution> decoded_exec = run(&decoded_dfs);
    Result<Execution> mapped_exec = run(&mapped_dfs);
    if (!decoded_exec.ok() || !decoded_exec->stats.ok()) {
      fail(index, tag + "decoded-path run failed: " +
                      (decoded_exec.ok()
                           ? decoded_exec->stats.status.ToString()
                           : decoded_exec.status().ToString()));
      break;
    }
    if (!mapped_exec.ok() || !mapped_exec->stats.ok()) {
      fail(index, tag + "mapped-scan run failed: " +
                      (mapped_exec.ok()
                           ? mapped_exec->stats.status.ToString()
                           : mapped_exec.status().ToString()));
      break;
    }
    if (AnswerLines(decoded_exec->answers) != AnswerLines(oracle)) {
      fail(index, tag + "decoded-path answers diverge from oracle");
      break;
    }
    if (AnswerLines(mapped_exec->answers) != AnswerLines(oracle)) {
      fail(index, tag + "mapped-scan answers diverge from oracle");
      break;
    }
    std::vector<std::string> stat_diffs = fuzz::CompareStatsIgnoringWallTimes(
        decoded_exec->stats, mapped_exec->stats);
    if (!stat_diffs.empty()) {
      fail(index, tag + "mapped-scan stats diverge from decoded path: " +
                      Join(stat_diffs, ';'));
      break;
    }

    if (options.max_failures > 0 && failures >= options.max_failures) break;
    if (log != nullptr && (index + 1) % 10 == 0) {
      *log << "format: " << (index + 1) << "/" << options.cases
           << " cases clean\n";
    }
  }
  std::remove(path.c_str());
  std::printf("format mode: %llu case(s), %llu failure(s)\n",
              (unsigned long long)std::min(index + 1, options.cases),
              (unsigned long long)failures);
  return failures == 0 ? 0 : 1;
}

/// Maps an ExecStats engine display name ("EagerUnnest", ...) back to its
/// EngineKind, for re-running the chooser's pick explicitly.
Result<EngineKind> KindFromDisplayName(const std::string& name) {
  for (EngineKind kind :
       {EngineKind::kPig, EngineKind::kHive, EngineKind::kNtgaEager,
        EngineKind::kNtgaLazyFull, EngineKind::kNtgaLazyPartial,
        EngineKind::kNtgaLazy}) {
    if (EngineKindToString(kind) == name) return kind;
  }
  return Status::InvalidArgument("not a concrete engine name: " + name);
}

/// Plan-chooser differential: engine=auto must produce the oracle's
/// answers AND byte-identical deterministic stats to explicitly running
/// the engine it reports having chosen.
int RunAutoMode(const fuzz::FuzzOptions& options, std::ostream* log) {
  uint64_t failures = 0;
  auto fail = [&failures, log](uint64_t index, const std::string& what) {
    ++failures;
    if (log != nullptr) {
      *log << "case " << index << " FAILED: " << what << "\n";
    } else {
      std::fprintf(stderr, "case %llu FAILED: %s\n",
                   (unsigned long long)index, what.c_str());
    }
  };

  std::set<std::string> chosen_kinds;
  uint64_t auto_runs = 0;
  uint64_t index = 0;
  for (; index < options.cases; ++index) {
    fuzz::FuzzCase fuzz_case = fuzz::MakeCase(options, index);
    auto built =
        GraphPatternQuery::Create(fuzz_case.name, fuzz_case.patterns);
    if (!built.ok()) continue;  // generator produced a degenerate case
    auto query =
        std::make_shared<const GraphPatternQuery>(std::move(*built));
    SolutionSet oracle =
        fuzz_case.aggregate.has_value()
            ? EvaluateAggregateInMemory(*query, *fuzz_case.aggregate,
                                        fuzz_case.triples)
            : EvaluateQueryInMemory(*query, fuzz_case.triples);

    ExecRequest request;
    request.payload = ExecPayload::kSingle;
    request.query = query;
    request.aggregate = fuzz_case.aggregate;

    EngineOptions auto_options;
    auto_options.kind = EngineKind::kAuto;
    auto_options.phi_partitions = options.diff.phi_partitions;
    auto_options.runtime.num_threads = 1;

    SimDfs auto_dfs(options.diff.cluster);
    Status wrote =
        auto_dfs.WriteFile("base", SerializeTriples(fuzz_case.triples));
    if (!wrote.ok()) {
      fail(index, "loading base relation: " + wrote.ToString());
      break;
    }
    Result<ExecResult> auto_exec =
        Exec(&auto_dfs, "base", request, auto_options);
    if (!auto_exec.ok() || !auto_exec->stats.ok()) {
      fail(index, "auto run failed: " +
                      (auto_exec.ok() ? auto_exec->stats.status.ToString()
                                      : auto_exec.status().ToString()));
      break;
    }
    ++auto_runs;
    const ExecStats& auto_stats = auto_exec->stats;
    if (auto_stats.chosen_engine.empty() ||
        auto_stats.plan_candidates.empty()) {
      fail(index, "auto run did not record a plan choice");
      break;
    }
    if (auto_stats.chosen_engine != auto_stats.engine) {
      fail(index, "auto ran '" + auto_stats.engine +
                      "' but recorded choosing '" +
                      auto_stats.chosen_engine + "'");
      break;
    }
    Result<EngineKind> chosen =
        KindFromDisplayName(auto_stats.chosen_engine);
    if (!chosen.ok()) {
      fail(index, chosen.status().ToString());
      break;
    }
    chosen_kinds.insert(auto_stats.chosen_engine);
    const std::string tag = auto_stats.chosen_engine + ": ";
    if (AnswerLines(auto_exec->answers) != AnswerLines(oracle)) {
      fail(index, tag + "auto answers diverge from oracle");
      break;
    }

    // The chooser must never pick a candidate it marked non-fitting
    // while a fitting one exists.
    bool any_fits = false;
    bool chosen_fits = false;
    for (const PlanCandidate& candidate : auto_stats.plan_candidates) {
      if (candidate.feasible && candidate.fits) any_fits = true;
      if (candidate.chosen) chosen_fits = candidate.fits;
    }
    if (any_fits && !chosen_fits) {
      fail(index,
           tag + "chose a non-fitting plan over a fitting candidate");
      break;
    }

    // Explicit re-run of the chosen engine on a fresh DFS: answers and
    // deterministic stats must be byte-identical.
    EngineOptions explicit_options = auto_options;
    explicit_options.kind = *chosen;
    SimDfs explicit_dfs(options.diff.cluster);
    wrote = explicit_dfs.WriteFile("base",
                                   SerializeTriples(fuzz_case.triples));
    if (!wrote.ok()) {
      fail(index, "loading base relation: " + wrote.ToString());
      break;
    }
    Result<ExecResult> explicit_exec =
        Exec(&explicit_dfs, "base", request, explicit_options);
    if (!explicit_exec.ok() || !explicit_exec->stats.ok()) {
      fail(index, tag + "explicit run failed: " +
                      (explicit_exec.ok()
                           ? explicit_exec->stats.status.ToString()
                           : explicit_exec.status().ToString()));
      break;
    }
    if (AnswerLines(explicit_exec->answers) != AnswerLines(oracle)) {
      fail(index, tag + "explicit answers diverge from oracle");
      break;
    }
    std::vector<std::string> stat_diffs =
        fuzz::CompareStatsIgnoringWallTimes(auto_exec->stats,
                                            explicit_exec->stats);
    if (!stat_diffs.empty()) {
      fail(index, tag + "auto stats diverge from the explicit run: " +
                      Join(stat_diffs, ';'));
      break;
    }

    if (options.max_failures > 0 && failures >= options.max_failures) break;
    if (log != nullptr && (index + 1) % 10 == 0) {
      *log << "auto: " << (index + 1) << "/" << options.cases
           << " cases clean (" << chosen_kinds.size()
           << " distinct engine(s) chosen)\n";
    }
  }

  std::printf("auto mode: %llu case(s), %llu failure(s), %zu distinct "
              "engine(s) chosen\n",
              (unsigned long long)std::min(index + 1, options.cases),
              (unsigned long long)failures, chosen_kinds.size());
  // Vacuity gate: a healthy sweep exercises the cost model enough that at
  // least two different engines win somewhere; a constant chooser means
  // the scoring is degenerate (or the plumbing ignores it).
  if (failures == 0 && auto_runs >= 10 && chosen_kinds.size() < 2) {
    std::fprintf(stderr,
                 "FAIL: --auto chose the same engine in all %llu run(s) — "
                 "the cost model looks degenerate\n",
                 (unsigned long long)auto_runs);
    return 1;
  }
  return failures == 0 ? 0 : 1;
}

int FuzzMain(int argc, char** argv) {
  Flags flags(argc, argv);
  if (!flags.ok()) return 2;

  fuzz::FuzzOptions options;
  options.seed = flags.GetInt("seed", 1);
  options.cases = flags.GetInt("cases", 100);
  options.query.min_unbound = flags.GetInt("min-unbound", 0);
  options.max_failures = flags.GetInt("max-failures", 1);
  options.shrink = !flags.Has("no-shrink");
  if (flags.Has("faults")) {
    options.diff.inject_faults = true;
    options.diff.fault_seed = options.seed;
  }
  if (flags.Has("trace-dir")) {
    options.diff.trace_dir = flags.Get("trace-dir");
    if (options.diff.trace_dir.empty()) {
      std::fprintf(stderr, "--trace-dir needs a directory path\n");
      return 2;
    }
  }
  const bool inject_bug = flags.Has("inject-bug");
  std::ostream* log = flags.Has("quiet") ? nullptr : &std::cout;

  int modes = 0;
  for (const char* mode : {"service", "format", "auto"}) {
    if (flags.Has(mode)) ++modes;
  }
  if (modes > 1 || (modes == 1 && inject_bug)) {
    std::fprintf(stderr,
                 "--service, --format, --auto, and --inject-bug are "
                 "mutually exclusive\n");
    return 2;
  }

  if (flags.Has("service")) return RunServiceMode(options, log);
  if (flags.Has("format")) return RunFormatMode(options, log);
  if (flags.Has("auto")) return RunAutoMode(options, log);

  if (inject_bug) {
    // Every case must route through the β group-filter's unbound branch
    // for the seeded defect to be reachable.
    if (options.query.min_unbound == 0) options.query.min_unbound = 1;
    SetBetaGroupFilterFlipForTesting(true);
  }
  fuzz::FuzzReport report = fuzz::RunFuzz(options, log);
  SetBetaGroupFilterFlipForTesting(false);

  if (inject_bug) {
    if (report.failures.empty()) {
      std::fprintf(stderr,
                   "FAIL: injected beta group-filter bug went undetected "
                   "over %llu case(s)\n",
                   (unsigned long long)report.cases_run);
      return 1;
    }
    const fuzz::FuzzFailure& failure = report.failures.front();
    if (options.shrink && failure.shrunk.triples.size() > 10) {
      std::fprintf(stderr,
                   "FAIL: injected bug caught but shrunk only to %zu "
                   "triples (want <= 10)\n",
                   failure.shrunk.triples.size());
      return 1;
    }
    std::printf("OK: injected bug caught in case %llu, shrunk to %zu "
                "triple(s) / %zu pattern(s)\n",
                (unsigned long long)failure.case_index,
                failure.shrunk.triples.size(),
                failure.shrunk.patterns.size());
    return 0;
  }

  if (log == nullptr) std::printf("%s\n", report.Summary().c_str());
  // Vacuity gate for --faults: at these probabilities, thousands of DFS
  // ops with zero retried operations means injection is not actually
  // armed — fail loudly instead of green-lighting a no-op sweep.
  if (options.diff.inject_faults && report.faulty_runs > 0 &&
      report.faulty_retried_ops == 0) {
    std::fprintf(stderr,
                 "FAIL: --faults ran %llu faulty run(s) without a single "
                 "retried operation — fault injection looks disarmed\n",
                 (unsigned long long)report.faulty_runs);
    return 1;
  }
  return report.ok() ? 0 : 1;
}

}  // namespace
}  // namespace rdfmr

int main(int argc, char** argv) { return rdfmr::FuzzMain(argc, argv); }
